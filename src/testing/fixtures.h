// Reusable constructions of the paper's running examples. Shared by the
// test suite, the figure-reproduction binaries, and the benchmarks.

#ifndef HIREL_TESTING_FIXTURES_H_
#define HIREL_TESTING_FIXTURES_H_

#include <memory>

#include "catalog/database.h"
#include "common/random.h"

namespace hirel {
namespace testing {

/// Fig. 1: the flying-creatures taxonomy and relation.
///
///   animal -> bird -> {canary, penguin}
///   penguin -> {galapagos_penguin, amazing_flying_penguin}
///   tweety: canary; paul: galapagos; pamela: afp;
///   patricia: afp AND galapagos; peter: afp
///
///   flies: +ALL bird, -ALL penguin, +ALL amazing_flying_penguin, +peter
struct FlyingFixture {
  FlyingFixture();

  Database db;
  Hierarchy* animal = nullptr;
  HierarchicalRelation* flies = nullptr;

  NodeId bird, canary, penguin, galapagos, afp;
  NodeId tweety, paul, pamela, patricia, peter;

  /// Single-attribute item helper.
  Item I(NodeId n) const { return Item{n}; }
};

/// Figs. 2, 3, 6-8: students, teachers, and the Respects relation.
///
///   student -> obsequious_student; instances john (obsequious), mary
///   teacher -> incoherent_teacher; instances jim (incoherent), wendy
///
///   respects: +(ALL obsequious_student, ALL teacher)
///             -(ALL student, ALL incoherent_teacher)
///             +(ALL obsequious_student, ALL incoherent_teacher)  [resolver]
struct RespectsFixture {
  /// With `with_resolver` false the third tuple is omitted, leaving the
  /// conflict of Fig. 3's dashed line in place.
  explicit RespectsFixture(bool with_resolver = true);

  Database db;
  Hierarchy* student = nullptr;
  Hierarchy* teacher = nullptr;
  HierarchicalRelation* respects = nullptr;

  NodeId obsequious, john, mary;
  NodeId incoherent, jim, wendy;
};

/// Figs. 4, 9, 11: the royal-elephant hierarchy, Color, and EnclosureSize.
///
///   animal -> elephant -> {african_elephant, indian_elephant,
///                          royal_elephant}
///   clyde: royal; appu: royal AND indian
///
///   color:     +(ALL elephant, grey), -(ALL royal_elephant, grey),
///              +(ALL royal_elephant, white), -(clyde, white),
///              +(clyde, dappled)
///   enclosure: +(ALL elephant, 3000), -(ALL indian_elephant, 3000),
///              +(ALL indian_elephant, 2000)
struct ElephantFixture {
  ElephantFixture();

  Database db;
  Hierarchy* animal = nullptr;
  Hierarchy* color = nullptr;
  Hierarchy* size = nullptr;
  HierarchicalRelation* colors = nullptr;
  HierarchicalRelation* enclosure = nullptr;

  NodeId elephant, african, indian, royal, clyde, appu;
  NodeId grey, white, dappled;
  NodeId sz3000, sz2000;
};

/// Fig. 10: Jack's and Jill's Loves relations over the Fig. 1 taxonomy.
///
///   jill_loves: +ALL bird, -ALL penguin, +peter
///   jack_loves: +ALL penguin
struct LovesFixture {
  LovesFixture();

  FlyingFixture base;
  HierarchicalRelation* jill = nullptr;
  HierarchicalRelation* jack = nullptr;
};

/// A randomized database for property tests and benchmarks: a DAG-shaped
/// hierarchy plus a consistent relation with exceptions.
struct RandomFixtureOptions {
  size_t num_classes = 12;
  size_t num_instances = 30;
  /// Probability that a new class/instance gets a second parent (multiple
  /// inheritance density).
  double extra_parent_p = 0.25;
  size_t num_attributes = 1;
  /// Number of tuple-insertion attempts.
  size_t num_tuples = 8;
  /// Probability a tuple is negated.
  double negative_p = 0.4;
};

/// Builds a random hierarchy-and-relation database that satisfies the
/// ambiguity constraint (conflicting inserts are resolved by inserting the
/// minimal resolution set with the older tuple's truth, or skipped).
class RandomDatabase {
 public:
  RandomDatabase(uint64_t seed, const RandomFixtureOptions& options);

  Database& db() { return *db_; }
  Hierarchy* hierarchy(size_t i) { return hierarchies_[i]; }
  HierarchicalRelation* relation() { return relation_; }

 private:
  std::unique_ptr<Database> db_;
  std::vector<Hierarchy*> hierarchies_;
  HierarchicalRelation* relation_ = nullptr;
};

/// Builds a pure-tree hierarchy with `depth` levels of `fanout` classes and
/// `instances_per_leaf` instances under each leaf class. Used by benches.
Hierarchy* BuildTreeHierarchy(Database& db, const std::string& name,
                              size_t depth, size_t fanout,
                              size_t instances_per_leaf);

}  // namespace testing
}  // namespace hirel

#endif  // HIREL_TESTING_FIXTURES_H_

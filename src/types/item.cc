#include "types/item.h"

#include <cassert>
#include <unordered_set>

namespace hirel {

bool ItemSubsumes(const Schema& schema, const Item& a, const Item& b) {
  assert(a.size() == schema.size() && b.size() == schema.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    if (!schema.hierarchy(i)->Subsumes(a[i], b[i])) return false;
  }
  return true;
}

bool ItemStrictlySubsumes(const Schema& schema, const Item& a, const Item& b) {
  return a != b && ItemSubsumes(schema, a, b);
}

bool ItemComparable(const Schema& schema, const Item& a, const Item& b) {
  return ItemSubsumes(schema, a, b) || ItemSubsumes(schema, b, a);
}

bool ItemBindsBelow(const Schema& schema, const Item& a, const Item& b) {
  assert(a.size() == schema.size() && b.size() == schema.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    if (!schema.hierarchy(i)->BindsBelow(a[i], b[i])) return false;
  }
  return true;
}

Item ItemMeet(const Schema& schema, const Item& a, const Item& b) {
  assert(a.size() == schema.size() && b.size() == schema.size());
  Item meet(schema.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    NodeId m = schema.hierarchy(i)->Meet(a[i], b[i]);
    if (m == kInvalidNode) return {};
    meet[i] = m;
  }
  return meet;
}

bool ItemIsAtomic(const Schema& schema, const Item& item) {
  assert(item.size() == schema.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    if (!schema.hierarchy(i)->is_instance(item[i])) return false;
  }
  return true;
}

size_t ItemExtensionSize(const Schema& schema, const Item& item) {
  size_t size = 1;
  for (size_t i = 0; i < schema.size(); ++i) {
    size *= schema.hierarchy(i)->CountAtomsUnder(item[i]);
  }
  return size;
}

std::vector<Item> ItemMaximalCommonDescendants(const Schema& schema,
                                               const Item& a, const Item& b) {
  assert(a.size() == schema.size() && b.size() == schema.size());
  // Per-attribute candidate sets; an empty set anywhere means the items are
  // disjoint as far as the hierarchies know.
  std::vector<std::vector<NodeId>> per_attr(schema.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    per_attr[i] = schema.hierarchy(i)->MaximalCommonDescendants(a[i], b[i]);
    if (per_attr[i].empty()) return {};
  }
  // Cartesian product of the per-attribute maximal descendants. Maximality
  // in the product graph is component-wise maximality.
  std::vector<Item> out;
  Item current(schema.size());
  // Iterative odometer over per_attr.
  std::vector<size_t> idx(schema.size(), 0);
  while (true) {
    for (size_t i = 0; i < schema.size(); ++i) current[i] = per_attr[i][idx[i]];
    out.push_back(current);
    size_t k = schema.size();
    while (k > 0) {
      --k;
      if (++idx[k] < per_attr[k].size()) break;
      idx[k] = 0;
      if (k == 0) return out;
    }
  }
}

Status CloseUnderMaximalCommonDescendants(const Schema& schema,
                                          std::vector<Item>& items,
                                          size_t max_items) {
  std::unordered_set<Item, ItemHash> seen(items.begin(), items.end());
  items.assign(seen.begin(), seen.end());
  // Worklist closure: every new item must be paired against all others.
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (ItemComparable(schema, items[i], items[j])) continue;
      for (Item& mcd :
           ItemMaximalCommonDescendants(schema, items[i], items[j])) {
        if (seen.insert(mcd).second) {
          if (items.size() >= max_items) {
            return Status::ResourceExhausted(
                "maximal-common-descendant closure exceeds item cap");
          }
          items.push_back(std::move(mcd));
        }
      }
    }
  }
  return Status::OK();
}

std::string ItemToString(const Schema& schema, const Item& item) {
  std::string out = "(";
  for (size_t i = 0; i < item.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.hierarchy(i)->NodeName(item[i]);
  }
  out += ")";
  return out;
}

}  // namespace hirel

// Item: one member (class or instance) from each attribute domain.
//
// "An item is now obtained as one member (class or element) from each of
// D1, D2, etc. ... Thus an item is a subset of D*, the domain of the
// relation obtained as the cartesian product of the attribute domains."
// (Section 2.2.) The item hierarchy is the product of the per-attribute
// hierarchy graphs; hirel never materialises that product — subsumption in
// it is exactly component-wise subsumption, which the helpers below expose.

#ifndef HIREL_TYPES_ITEM_H_
#define HIREL_TYPES_ITEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/dag.h"
#include "types/schema.h"

namespace hirel {

/// One hierarchy node per attribute, positionally aligned with the Schema.
using Item = std::vector<NodeId>;

/// Truth value of a tuple: true for a positive (normal) tuple, false for a
/// negated tuple (Section 2.1).
enum class Truth : uint8_t {
  kNegative = 0,
  kPositive = 1,
};

/// "+" / "-", the notation used in the paper's figures.
inline const char* TruthToString(Truth t) {
  return t == Truth::kPositive ? "+" : "-";
}

inline Truth Negate(Truth t) {
  return t == Truth::kPositive ? Truth::kNegative : Truth::kPositive;
}

/// True iff `a` subsumes `b` in the item hierarchy: component-wise
/// subsumption in every attribute's hierarchy. Reflexive.
bool ItemSubsumes(const Schema& schema, const Item& a, const Item& b);

/// True iff `a` subsumes `b` and the items differ.
bool ItemStrictlySubsumes(const Schema& schema, const Item& a, const Item& b);

/// True iff one item subsumes the other.
bool ItemComparable(const Schema& schema, const Item& a, const Item& b);

/// Like ItemSubsumes but honouring preference edges (Appendix): used when
/// ordering binding strength, never for set semantics.
bool ItemBindsBelow(const Schema& schema, const Item& a, const Item& b);

/// Component-wise meet of two comparable-per-component items; empty vector
/// if some component pair is incomparable.
Item ItemMeet(const Schema& schema, const Item& a, const Item& b);

/// True iff every component is an instance node: the item denotes a single
/// element of D*.
bool ItemIsAtomic(const Schema& schema, const Item& item);

/// Number of atomic items subsumed by `item` (the size of its extension).
size_t ItemExtensionSize(const Schema& schema, const Item& item);

/// The maximal common subsumees of items a and b in the (virtual) product
/// graph: all combinations of per-attribute maximal common descendants.
/// Empty means hirel has no evidence the two items intersect — the paper's
/// optimistic disjointness assumption.
std::vector<Item> ItemMaximalCommonDescendants(const Schema& schema,
                                               const Item& a, const Item& b);

/// Closes `items` under pairwise maximal common descendants, deduplicating.
/// A set of asserted items closed under MCDs cannot harbour an off-path
/// conflict at an unasserted site (see conflict.h); the derived relations
/// produced by the algebra operators use this to stay consistent. Fails
/// with kResourceExhausted if the closure would exceed `max_items`.
Status CloseUnderMaximalCommonDescendants(const Schema& schema,
                                          std::vector<Item>& items,
                                          size_t max_items = 100'000);

/// "(bird, 3000)"-style rendering using node display names.
std::string ItemToString(const Schema& schema, const Item& item);

/// Hash functor for unordered containers keyed by Item.
struct ItemHash {
  size_t operator()(const Item& item) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (NodeId n : item) {
      h ^= n;
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

}  // namespace hirel

#endif  // HIREL_TYPES_ITEM_H_

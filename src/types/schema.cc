#include "types/schema.h"

#include "common/str_util.h"

namespace hirel {

Result<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound(StrCat("attribute '", name, "'"));
}

Status Schema::Append(std::string name, Hierarchy* hierarchy) {
  if (hierarchy == nullptr) {
    return Status::InvalidArgument("attribute hierarchy must not be null");
  }
  if (name.empty()) {
    return Status::InvalidArgument("attribute name must not be empty");
  }
  if (IndexOf(name).ok()) {
    return Status::AlreadyExists(StrCat("attribute '", name, "'"));
  }
  attributes_.push_back(Attribute{std::move(name), hierarchy});
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ": ";
    out += attributes_[i].hierarchy->name();
  }
  out += ")";
  return out;
}

bool Schema::CompatibleWith(const Schema& other) const {
  if (size() != other.size()) return false;
  for (size_t i = 0; i < size(); ++i) {
    if (attributes_[i].hierarchy != other.attributes_[i].hierarchy) {
      return false;
    }
  }
  return true;
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.attributes_[i].name != b.attributes_[i].name ||
        a.attributes_[i].hierarchy != b.attributes_[i].hierarchy) {
      return false;
    }
  }
  return true;
}

}  // namespace hirel

// Schema: the typed attribute list of a relation.
//
// Each attribute of a hierarchical relation ranges over the domain described
// by one Hierarchy (Section 2.2). A scalar attribute is simply bound to a
// degenerate hierarchy whose non-root nodes are interned instances.

#ifndef HIREL_TYPES_SCHEMA_H_
#define HIREL_TYPES_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "hierarchy/hierarchy.h"

namespace hirel {

/// One attribute: a name plus the hierarchy its values are drawn from.
/// The hierarchy is owned by the catalog (or by the test/example); Schema
/// only references it.
struct Attribute {
  std::string name;
  Hierarchy* hierarchy = nullptr;
};

/// An ordered list of attributes.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  size_t size() const { return attributes_.size(); }
  bool empty() const { return attributes_.empty(); }

  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  Hierarchy* hierarchy(size_t i) const { return attributes_[i].hierarchy; }
  const std::string& name(size_t i) const { return attributes_[i].name; }

  /// Index of the attribute named `name`; kNotFound if absent.
  Result<size_t> IndexOf(std::string_view name) const;

  /// Appends an attribute. Attribute names must be unique within a schema.
  Status Append(std::string name, Hierarchy* hierarchy);

  /// "rel(a: animal, sz: int)"-style rendering of the attribute list.
  std::string ToString() const;

  /// Schemas are compatible when they have the same arity and each position
  /// is bound to the same hierarchy object (attribute names may differ —
  /// set operations only require domain compatibility).
  bool CompatibleWith(const Schema& other) const;

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace hirel

#endif  // HIREL_TYPES_SCHEMA_H_

#include "types/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace hirel {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

ValueType Value::type() const {
  return static_cast<ValueType>(data_.index());
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::ostringstream oss;
      double d = AsDouble();
      if (d == std::floor(d) && std::isfinite(d)) {
        oss << d << ".0";
      } else {
        oss << d;
      }
      return oss.str();
    }
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(type()) * 0x9e3779b97f4a7c15ULL;
  switch (type()) {
    case ValueType::kNull:
      return seed;
    case ValueType::kBool:
      return seed ^ std::hash<bool>{}(AsBool());
    case ValueType::kInt:
      return seed ^ std::hash<int64_t>{}(AsInt());
    case ValueType::kDouble:
      return seed ^ std::hash<double>{}(AsDouble());
    case ValueType::kString:
      return seed ^ std::hash<std::string>{}(AsString());
  }
  return seed;
}

bool operator<(const Value& a, const Value& b) {
  if (a.type() != b.type()) {
    return static_cast<int>(a.type()) < static_cast<int>(b.type());
  }
  switch (a.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kBool:
      return a.AsBool() < b.AsBool();
    case ValueType::kInt:
      return a.AsInt() < b.AsInt();
    case ValueType::kDouble:
      return a.AsDouble() < b.AsDouble();
    case ValueType::kString:
      return a.AsString() < b.AsString();
  }
  return false;
}

}  // namespace hirel

// Value: the atomic (instance-level) datum stored at hierarchy leaves.

#ifndef HIREL_TYPES_VALUE_H_
#define HIREL_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace hirel {

/// Dynamic type tag of a Value.
enum class ValueType {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
};

const char* ValueTypeToString(ValueType type);

/// A dynamically typed atomic value. Instances in a hierarchy carry a Value
/// payload; classes carry only a name. Scalar attribute domains (e.g. the
/// enclosure sizes of Fig. 11) are hierarchies whose only non-root nodes are
/// Value-bearing instances.
///
/// Values order first by type tag, then by payload, which gives a total
/// order usable as a map key. Note that Int(1) != Double(1.0): hirel does
/// not perform implicit numeric coercion.
class Value {
 public:
  /// Constructs the null value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Payload(b)); }
  static Value Int(int64_t i) { return Value(Payload(i)); }
  static Value Double(double d) { return Value(Payload(d)); }
  static Value String(std::string s) { return Value(Payload(std::move(s))); }

  ValueType type() const;

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }

  /// Typed accessors; the value must hold the requested type.
  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Human-readable rendering ("null", "true", "42", "3.5", "tweety").
  std::string ToString() const;

  /// Stable hash suitable for unordered containers.
  size_t Hash() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b);

 private:
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string>;

  explicit Value(Payload payload) : data_(std::move(payload)) {}

  Payload data_;
};

/// Hash functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace hirel

#endif  // HIREL_TYPES_VALUE_H_

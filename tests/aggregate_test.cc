#include "algebra/aggregate.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::ElephantFixture;
using testing::FlyingFixture;

TEST(AggregateTest, CountExtension) {
  FlyingFixture f;
  EXPECT_EQ(CountExtension(*f.flies).value(), 4u);
  f.flies->Clear();
  EXPECT_EQ(CountExtension(*f.flies).value(), 0u);
}

TEST(AggregateTest, NumericAggregates) {
  ElephantFixture f;
  // ext(enclosure) = {(clyde, 3000), (appu, 2000)}.
  EXPECT_DOUBLE_EQ(
      Aggregate(*f.enclosure, 1, AggregateKind::kSum).value(), 5000.0);
  EXPECT_DOUBLE_EQ(
      Aggregate(*f.enclosure, 1, AggregateKind::kAvg).value(), 2500.0);
  EXPECT_DOUBLE_EQ(
      Aggregate(*f.enclosure, 1, AggregateKind::kMin).value(), 2000.0);
  EXPECT_DOUBLE_EQ(
      Aggregate(*f.enclosure, 1, AggregateKind::kMax).value(), 3000.0);
}

TEST(AggregateTest, EmptyExtensionRules) {
  ElephantFixture f;
  f.enclosure->Clear();
  EXPECT_DOUBLE_EQ(
      Aggregate(*f.enclosure, 1, AggregateKind::kSum).value(), 0.0);
  EXPECT_TRUE(Aggregate(*f.enclosure, 1, AggregateKind::kAvg).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Aggregate(*f.enclosure, 1, AggregateKind::kMin).status()
                  .IsInvalidArgument());
}

TEST(AggregateTest, NonNumericAttributeRejected) {
  ElephantFixture f;
  // The color attribute holds strings.
  EXPECT_TRUE(Aggregate(*f.colors, 1, AggregateKind::kSum).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Aggregate(*f.colors, 9, AggregateKind::kSum).status()
                  .IsInvalidArgument());
}

TEST(AggregateTest, RollUpByGivenClasses) {
  FlyingFixture f;
  // Flyers per class: birds 4, penguins 3, afp 3, canaries 1.
  std::vector<RollUpRow> rows =
      RollUp(*f.flies, 0, {f.bird, f.penguin, f.afp, f.canary}).value();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].count, 4u);
  EXPECT_EQ(rows[1].count, 3u);
  EXPECT_EQ(rows[2].count, 3u);
  EXPECT_EQ(rows[3].count, 1u);
}

TEST(AggregateTest, RollUpTopLevel) {
  FlyingFixture f;
  // The root's only child is bird: one bucket with all 4 flyers.
  std::vector<RollUpRow> rows = RollUpTopLevel(*f.flies, 0).value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].group, f.bird);
  EXPECT_EQ(rows[0].count, 4u);
}

TEST(AggregateTest, OverlappingGroupsCountTwice) {
  FlyingFixture f;
  // patricia sits under both galapagos and afp.
  std::vector<RollUpRow> rows =
      RollUp(*f.flies, 0, {f.galapagos, f.afp}).value();
  // galapagos flyers: patricia. afp flyers: pamela, patricia, peter.
  EXPECT_EQ(rows[0].count, 1u);
  EXPECT_EQ(rows[1].count, 3u);
}

TEST(AggregateTest, RollUpToStringRendersNames) {
  FlyingFixture f;
  std::vector<RollUpRow> rows = RollUpTopLevel(*f.flies, 0).value();
  std::string s = RollUpToString(*f.flies, 0, rows);
  EXPECT_NE(s.find("bird: 4"), std::string::npos);
}

TEST(AggregateTest, RollUpValidatesGroups) {
  FlyingFixture f;
  EXPECT_TRUE(RollUp(*f.flies, 0, {kInvalidNode}).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RollUp(*f.flies, 7, {f.bird}).status().IsInvalidArgument());
}

TEST(AggregateTest, CountRespectsExceptions) {
  ElephantFixture f;
  // color_of extension: clyde dappled, appu white -> 2 rows, not the 6 the
  // class-level tuples might suggest.
  EXPECT_EQ(CountExtension(*f.colors).value(), 2u);
}

}  // namespace
}  // namespace hirel

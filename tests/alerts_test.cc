// Alerting layer: CREATE/DROP ALERT parsing and semantics, the
// deterministic fire → still-firing → resolve lifecycle driven by manual
// ticks, FOR-n hysteresis, severity subsumption through sys.alerts, the
// health verdict, the stall watchdog, SHOW WAITS percentiles, and the
// EXPORT DIAGNOSTICS / auto-capture bundles.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hql/executor.h"
#include "obs/alerts.h"
#include "obs/export.h"
#include "obs/wait.h"

namespace hirel {
namespace obs {
namespace {

using hql::Executor;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- pure helpers ------------------------------------------------------

TEST(AlertRuleTest, ParseSeverityAndOp) {
  AlertSeverity sev;
  EXPECT_TRUE(ParseAlertSeverity("info", &sev));
  EXPECT_EQ(sev, AlertSeverity::kInfo);
  EXPECT_TRUE(ParseAlertSeverity("WARN", &sev));
  EXPECT_EQ(sev, AlertSeverity::kWarn);
  EXPECT_TRUE(ParseAlertSeverity("critical", &sev));
  EXPECT_EQ(sev, AlertSeverity::kCrit);
  EXPECT_FALSE(ParseAlertSeverity("fatal", &sev));

  AlertOp op;
  EXPECT_TRUE(ParseAlertOp(">", &op));
  EXPECT_EQ(op, AlertOp::kGt);
  EXPECT_TRUE(ParseAlertOp("<=", &op));
  EXPECT_EQ(op, AlertOp::kLe);
  EXPECT_TRUE(ParseAlertOp("=", &op));
  EXPECT_EQ(op, AlertOp::kEq);
  EXPECT_FALSE(ParseAlertOp("!=", &op));
}

TEST(AlertRuleTest, ComponentMapping) {
  EXPECT_STREQ(AlertComponent("pool.tasks"), "pool");
  EXPECT_STREQ(AlertComponent("watchdog.pool_queue"), "pool");
  EXPECT_STREQ(AlertComponent("wal.appends"), "wal");
  EXPECT_STREQ(AlertComponent("snapshot.saves"), "wal");
  EXPECT_STREQ(AlertComponent("cache.hits"), "cache");
  EXPECT_STREQ(AlertComponent("subsumption_cache.entries"), "cache");
  EXPECT_STREQ(AlertComponent("query.statements"), "queries");
  EXPECT_STREQ(AlertComponent("watchdog.slow_query"), "queries");
  EXPECT_STREQ(AlertComponent("watchdog.io_wait_share"), "wal");
  EXPECT_STREQ(AlertComponent("log.events"), "telemetry");
}

TEST(AlertRuleTest, DeriveHealthAlwaysEmitsFiveComponents) {
  std::vector<ComponentHealth> health = DeriveHealth({});
  ASSERT_EQ(health.size(), 5u);
  for (const ComponentHealth& c : health) {
    EXPECT_EQ(c.verdict, HealthVerdict::kOk);
    EXPECT_EQ(c.firing, 0u);
  }

  AlertSnapshot warn;
  warn.rule.name = "w";
  warn.rule.metric = "query.statements";
  warn.rule.severity = AlertSeverity::kWarn;
  warn.state = AlertState::kFiring;
  AlertSnapshot crit = warn;
  crit.rule.name = "c";
  crit.rule.metric = "pool.tasks";
  crit.rule.severity = AlertSeverity::kCrit;
  health = DeriveHealth({warn, crit});
  for (const ComponentHealth& c : health) {
    if (c.component == "queries") {
      EXPECT_EQ(c.verdict, HealthVerdict::kDegraded);
      EXPECT_EQ(c.worst_alert, "w");
    } else if (c.component == "pool") {
      EXPECT_EQ(c.verdict, HealthVerdict::kCritical);
      EXPECT_EQ(c.worst_alert, "c");
    } else {
      EXPECT_EQ(c.verdict, HealthVerdict::kOk);
    }
  }
}

// ---- statement surface -------------------------------------------------

TEST(AlertStatementTest, CreateShowDrop) {
  Executor exec;
  std::string out = exec.Execute(
                            "CREATE ALERT hot ON query.statements >= 10 "
                            "FOR 2 SAMPLES SEVERITY crit;")
                        .value();
  EXPECT_NE(out.find("alert 'hot'"), std::string::npos);

  out = exec.Execute("SHOW ALERTS;").value();
  EXPECT_NE(out.find("hot [crit] query.statements >= 10 FOR 2"),
            std::string::npos);
  // The built-in watchdog rules are always listed, marked builtin.
  EXPECT_NE(out.find("watchdog_slow_query"), std::string::npos);
  EXPECT_NE(out.find("(builtin)"), std::string::npos);

  EXPECT_TRUE(exec.Execute("DROP ALERT hot;").ok());
  out = exec.Execute("SHOW ALERTS;").value();
  EXPECT_EQ(out.find("hot [crit]"), std::string::npos);
}

TEST(AlertStatementTest, ParseAndValidationErrors) {
  Executor exec;
  // Missing operator.
  EXPECT_FALSE(exec.Execute("CREATE ALERT a ON query.statements 10;").ok());
  // Unknown severity.
  EXPECT_FALSE(
      exec.Execute("CREATE ALERT a ON query.statements > 1 SEVERITY bad;")
          .ok());
  // Non-positive FOR window.
  EXPECT_FALSE(
      exec.Execute("CREATE ALERT a ON query.statements > 1 FOR 0 SAMPLES;")
          .ok());
  // Duplicate name.
  ASSERT_TRUE(exec.Execute("CREATE ALERT a ON query.statements > 1;").ok());
  EXPECT_FALSE(exec.Execute("CREATE ALERT a ON pool.tasks > 1;").ok());
  // Colliding with a built-in.
  EXPECT_FALSE(
      exec.Execute("CREATE ALERT watchdog_slow_query ON pool.tasks > 1;")
          .ok());
  // Dropping built-ins and unknowns.
  EXPECT_FALSE(exec.Execute("DROP ALERT watchdog_slow_query;").ok());
  EXPECT_FALSE(exec.Execute("DROP ALERT nonesuch;").ok());
}

TEST(AlertStatementTest, LifecycleFireStillFiringResolve) {
  Executor exec;
  ASSERT_TRUE(exec.Execute("SET WATCHDOG_QUERY_MS 600000;").ok());
  ASSERT_TRUE(
      exec.Execute("CREATE ALERT hot ON query.statements > 1;").ok());

  // First tick: query.statements is already past 1, so the rule fires.
  ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());
  std::vector<AlertSnapshot> snap = exec.alerts().Snapshot();
  const AlertSnapshot* hot = nullptr;
  for (const AlertSnapshot& a : snap) {
    if (a.rule.name == "hot") hot = &a;
  }
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(hot->state, AlertState::kFiring);
  EXPECT_EQ(hot->fires, 1u);
  EXPECT_GT(hot->fired_epoch_ms, 0u);

  // Still breaching: stays firing, no second fire transition.
  ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());
  snap = exec.alerts().Snapshot();
  for (const AlertSnapshot& a : snap) {
    if (a.rule.name == "hot") {
      EXPECT_EQ(a.state, AlertState::kFiring);
      EXPECT_EQ(a.fires, 1u);
    }
  }
  EXPECT_EQ(exec.alerts().FiringCount(), 1u);
  // The fire transition was counted (RESET METRICS below will zero it).
  EXPECT_EQ(exec.database().metrics().counter("alerts.fired").value(), 1u);

  // Zeroing the counter resolves it on the next tick.
  ASSERT_TRUE(exec.Execute("RESET METRICS;").ok());
  ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());
  snap = exec.alerts().Snapshot();
  for (const AlertSnapshot& a : snap) {
    if (a.rule.name == "hot") {
      EXPECT_EQ(a.state, AlertState::kResolved);
      EXPECT_EQ(a.fires, 1u);
      EXPECT_GT(a.resolved_seq, a.fired_seq);
    }
  }
  EXPECT_EQ(exec.alerts().FiringCount(), 0u);

  // The resolve transition landed after the reset, so it reads 1.
  EXPECT_EQ(exec.database().metrics().counter("alerts.resolved").value(),
            1u);
}

TEST(AlertStatementTest, ForSamplesHysteresis) {
  Executor exec;
  ASSERT_TRUE(exec.Execute("SET WATCHDOG_QUERY_MS 600000;").ok());
  ASSERT_TRUE(
      exec.Execute("CREATE ALERT slow_burn ON query.statements > 1 "
                   "FOR 3 SAMPLES;")
          .ok());

  auto state_of = [&](const char* name) {
    for (const AlertSnapshot& a : exec.alerts().Snapshot()) {
      if (a.rule.name == name) return a.state;
    }
    return AlertState::kOk;
  };

  ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());
  EXPECT_EQ(state_of("slow_burn"), AlertState::kPending);
  ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());
  EXPECT_EQ(state_of("slow_burn"), AlertState::kPending);
  ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());
  EXPECT_EQ(state_of("slow_burn"), AlertState::kFiring);

  // A non-breaching sample resets the window: after it, three more
  // breaching samples are needed again.
  ASSERT_TRUE(exec.Execute("RESET METRICS;").ok());
  ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());
  EXPECT_EQ(state_of("slow_burn"), AlertState::kResolved);
  ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());
  EXPECT_EQ(state_of("slow_burn"), AlertState::kPending);
}

TEST(AlertStatementTest, SeveritySubsumptionInSysAlerts) {
  Executor exec;
  ASSERT_TRUE(
      exec.Execute("CREATE ALERT note ON query.statements > 1 "
                   "SEVERITY info;")
          .ok());
  ASSERT_TRUE(
      exec.Execute("CREATE ALERT worry ON query.statements > 2 "
                   "SEVERITY warn;")
          .ok());
  ASSERT_TRUE(
      exec.Execute("CREATE ALERT page ON query.statements > 3 "
                   "SEVERITY crit;")
          .ok());

  // ALL warn covers warn and crit rows but not info (info ⊃ warn ⊃ crit).
  std::string out =
      exec.Execute("SELECT * FROM sys.alerts WHERE severity = ALL warn;")
          .value();
  EXPECT_NE(out.find("worry"), std::string::npos);
  EXPECT_NE(out.find("page"), std::string::npos);
  EXPECT_EQ(out.find("note"), std::string::npos);
  // The built-in watchdog rules are warn, so they are covered too.
  EXPECT_NE(out.find("watchdog_slow_query"), std::string::npos);

  // ALL info covers everything; ALL crit only the crit row.
  out = exec.Execute("SELECT * FROM sys.alerts WHERE severity = ALL info;")
            .value();
  EXPECT_NE(out.find("note"), std::string::npos);
  EXPECT_NE(out.find("worry"), std::string::npos);
  out = exec.Execute("SELECT * FROM sys.alerts WHERE severity = ALL crit;")
            .value();
  EXPECT_NE(out.find("page"), std::string::npos);
  EXPECT_EQ(out.find("worry"), std::string::npos);
}

TEST(AlertStatementTest, HealthVerdictFollowsFiringSet) {
  Executor exec;
  ASSERT_TRUE(exec.Execute("SET WATCHDOG_QUERY_MS 600000;").ok());
  std::string out = exec.Execute("SHOW HEALTH;").value();
  EXPECT_NE(out.find("health: ok"), std::string::npos);

  ASSERT_TRUE(
      exec.Execute("CREATE ALERT warny ON query.statements > 1;").ok());
  ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());
  out = exec.Execute("SHOW HEALTH;").value();
  EXPECT_NE(out.find("health: degraded"), std::string::npos);
  EXPECT_NE(out.find("queries: degraded (1 firing, worst warny)"),
            std::string::npos);

  ASSERT_TRUE(
      exec.Execute(
              "CREATE ALERT crity ON query.statements >= 0 SEVERITY crit;")
          .ok());
  ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());
  out = exec.Execute("SHOW HEALTH;").value();
  EXPECT_NE(out.find("health: critical"), std::string::npos);
  EXPECT_NE(out.find("queries: critical"), std::string::npos);

  std::string json = exec.Execute("SHOW HEALTH JSON;").value();
  EXPECT_NE(json.find("\"verdict\":\"critical\""), std::string::npos);
  EXPECT_NE(json.find("\"component\":\"queries\""), std::string::npos);

  // sys.health mirrors the rendering.
  out = exec.Execute("SELECT * FROM sys.health;").value();
  EXPECT_NE(out.find("critical"), std::string::npos);
  EXPECT_NE(out.find("telemetry"), std::string::npos);
}

TEST(AlertStatementTest, WatchdogSlowQueryFiresAndDisables) {
  Executor exec;
  // Budget 0: every completed statement breaches.
  ASSERT_TRUE(exec.Execute("SET WATCHDOG_QUERY_MS 0;").ok());
  ASSERT_TRUE(exec.Execute("SHOW RELATIONS;").ok());
  ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());
  std::string out = exec.Execute("SHOW ALERTS;").value();
  EXPECT_NE(out.find("watchdog_slow_query"), std::string::npos);
  bool firing = false;
  for (const AlertSnapshot& a : exec.alerts().Snapshot()) {
    if (a.rule.name == "watchdog_slow_query") {
      firing = a.state == AlertState::kFiring;
    }
  }
  EXPECT_TRUE(firing);

  // OFF disables the check; the rule observes a non-breach and resolves.
  ASSERT_TRUE(exec.Execute("SET WATCHDOG_QUERY_MS OFF;").ok());
  ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());
  for (const AlertSnapshot& a : exec.alerts().Snapshot()) {
    if (a.rule.name == "watchdog_slow_query") {
      EXPECT_EQ(a.state, AlertState::kResolved);
    }
  }
}

TEST(AlertStatementTest, ExportDiagnosticsWritesValidBundle) {
  Executor exec;
  ASSERT_TRUE(
      exec.Execute("CREATE ALERT hot ON query.statements > 1;").ok());
  ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());
  std::string path =
      std::string(::testing::TempDir()) + "/alerts_diag_bundle.json";
  std::string out =
      exec.Execute("EXPORT DIAGNOSTICS '" + path + "';").value();
  EXPECT_NE(out.find("exported diagnostics"), std::string::npos);

  std::string json = ReadFile(path);
  EXPECT_NE(json.find("\"format\":1"), std::string::npos);
  EXPECT_NE(json.find("\"engine\":\"hirel\""), std::string::npos);
  EXPECT_NE(json.find("\"cause\":\"statement\""), std::string::npos);
  EXPECT_NE(json.find("\"config\":{"), std::string::npos);
  EXPECT_NE(json.find("\"threads\""), std::string::npos);
  EXPECT_NE(json.find("\"alerts\":"), std::string::npos);
  EXPECT_NE(json.find("\"hot\""), std::string::npos);
  EXPECT_NE(json.find("\"health\":"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(json.find("\"waits\":"), std::string::npos);
  EXPECT_NE(json.find("\"queries\":"), std::string::npos);
  EXPECT_NE(json.find("\"telemetry\":"), std::string::npos);
  EXPECT_NE(json.find("\"log\":"), std::string::npos);
  std::filesystem::remove(path);

  // Unwritable path fails the statement, not the process.
  EXPECT_FALSE(
      exec.Execute("EXPORT DIAGNOSTICS '/nonexistent-dir/x.json';").ok());
}

TEST(AlertStatementTest, AutoCaptureOncePerFire) {
  std::string dir =
      std::string(::testing::TempDir()) + "/alerts_auto_capture";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    Executor exec;
    ASSERT_TRUE(exec.Execute("SET WATCHDOG_QUERY_MS 600000;").ok());
    ASSERT_TRUE(exec.Execute("SET DIAGNOSTICS_DIR '" + dir + "';").ok());
    ASSERT_TRUE(
        exec.Execute("CREATE ALERT hot ON query.statements > 1;").ok());
    ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());  // fires
    ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());  // still firing
    ASSERT_TRUE(exec.Execute("SHOW ALERTS;").ok());

    size_t bundles = 0;
    std::string bundle_path;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      ++bundles;
      bundle_path = entry.path().string();
    }
    // Exactly one capture per fire transition, not one per firing tick.
    ASSERT_EQ(bundles, 1u);
    EXPECT_NE(bundle_path.find("diag.hot."), std::string::npos);
    std::string json = ReadFile(bundle_path);
    EXPECT_NE(json.find("\"cause\":\"alert:hot\""), std::string::npos);

    // Re-firing after a resolve captures a second bundle.
    ASSERT_TRUE(exec.Execute("RESET METRICS;").ok());
    ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());  // resolves
    ASSERT_TRUE(exec.Execute("SHOW RELATIONS;").ok());
    ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());  // fires again
    bundles = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      (void)entry;
      ++bundles;
    }
    EXPECT_EQ(bundles, 2u);

    ASSERT_TRUE(exec.Execute("SET DIAGNOSTICS_DIR OFF;").ok());
  }
  std::filesystem::remove_all(dir);
}

TEST(AlertStatementTest, ShowWaitsRendersSitesWithPercentiles) {
  Executor exec;
  // Record a deterministic latency distribution on a private site.
  WaitEventRegistry::Site& site = WaitEventRegistry::Global().RegisterSite(
      "alerts_test_wait", WaitClass::kIo);
  for (int i = 0; i < 100; ++i) {
    site.Record(0, 50'000);  // 50 us
  }
  site.Record(0, 4'000'000);  // 4 ms outlier

  std::string out = exec.Execute("SHOW WAITS;").value();
  EXPECT_NE(out.find("io:"), std::string::npos);
  EXPECT_NE(out.find("alerts_test_wait"), std::string::npos);
  EXPECT_NE(out.find("p99="), std::string::npos);

  std::string json = exec.Execute("SHOW WAITS JSON;").value();
  EXPECT_NE(json.find("\"class\":\"io\""), std::string::npos);
  EXPECT_NE(json.find("\"site\":\"alerts_test_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"p50_us\""), std::string::npos);

  // The site's histogram also reaches the Prometheus exposition.
  std::string prom = exec.Execute("SHOW METRICS PROMETHEUS;").value();
  EXPECT_NE(prom.find("hirel_wait_site_ns_bucket"), std::string::npos);
  EXPECT_NE(prom.find("site=\"alerts_test_wait\""), std::string::npos);
  EXPECT_NE(prom.find("class=\"io\""), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);

  WaitEventRegistry::Global().Reset();
}

TEST(AlertStatementTest, SiteQuantileMatchesDistribution) {
  WaitEventRegistry::SiteSnapshot site;
  site.name = "q";
  // 100 waits in the (16384, 32768] ns bucket (index 5, bound 1024<<5).
  site.count = 100;
  site.buckets[5] = 100;
  site.max_ns = 30'000;
  uint64_t p50 = WaitEventRegistry::SiteQuantileNs(site, 0.50);
  EXPECT_GE(p50, 16'384u);
  EXPECT_LE(p50, 30'000u);
  // Empty site: zero.
  WaitEventRegistry::SiteSnapshot empty;
  EXPECT_EQ(WaitEventRegistry::SiteQuantileNs(empty, 0.99), 0u);
}

TEST(AlertStatementTest, TelemetryJsonCarriesEpochMs) {
  Executor exec;
  ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());
  std::string json = exec.Execute("SHOW TELEMETRY JSON;").value();
  // Samples are [seq, ts_ms, epoch_ms, value] quadruples; the first tick
  // has seq 1 and a 13-digit epoch, so the quadruple has 4 fields.
  EXPECT_NE(json.find("\"samples\":[[1,"), std::string::npos);

  // sys.metrics_history exposes the same epoch_ms as a column.
  std::string out =
      exec.Execute("SELECT * FROM sys.metrics_history;").value();
  EXPECT_NE(out.find("epoch_ms"), std::string::npos);
}

TEST(AlertStatementTest, AlertsSurviveLoadSwap) {
  std::string snap =
      std::string(::testing::TempDir()) + "/alerts_load_swap.db";
  Executor exec;
  ASSERT_TRUE(exec.Execute("CREATE HIERARCHY h;").ok());
  ASSERT_TRUE(exec.Execute("SAVE '" + snap + "';").ok());
  ASSERT_TRUE(
      exec.Execute("CREATE ALERT hot ON query.statements > 1;").ok());
  ASSERT_TRUE(exec.Execute("LOAD '" + snap + "';").ok());
  // Rules survive the database swap and evaluate against the new registry.
  ASSERT_TRUE(exec.Execute("SET TELEMETRY TICK;").ok());
  std::string out = exec.Execute("SHOW ALERTS;").value();
  EXPECT_NE(out.find("hot [warn]"), std::string::npos);
  out = exec.Execute("SELECT * FROM sys.alerts;").value();
  EXPECT_NE(out.find("hot"), std::string::npos);
  std::filesystem::remove(snap);
}

TEST(AlertStatementTest, HelpMentionsAlertSurface) {
  Executor exec;
  std::string help = exec.Execute("HELP;").value();
  EXPECT_NE(help.find("CREATE ALERT"), std::string::npos);
  EXPECT_NE(help.find("SHOW HEALTH"), std::string::npos);
  EXPECT_NE(help.find("EXPORT DIAGNOSTICS"), std::string::npos);
  EXPECT_NE(help.find("sys.alerts"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace hirel

#include "core/binding.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::FlyingFixture;

Item ItemOf(const HierarchicalRelation& r, TupleId id) {
  return r.tuple(id).item;
}

TEST(BindingTest, SelfBoundTupleWinsOutright) {
  FlyingFixture f;
  // Peter has a tuple of his own; it binds strongest, overriding all
  // others (Section 2.1).
  Binding b = ComputeBinding(*f.flies, {f.peter}).value();
  EXPECT_TRUE(b.self_bound);
  ASSERT_EQ(b.binders.size(), 1u);
  EXPECT_EQ(ItemOf(*f.flies, b.binders[0]), (Item{f.peter}));
}

TEST(BindingTest, OffPathSingleBinderThroughChain) {
  FlyingFixture f;
  // Paul: penguin- preempts bird+.
  Binding b = ComputeBinding(*f.flies, {f.paul}).value();
  EXPECT_FALSE(b.self_bound);
  ASSERT_EQ(b.binders.size(), 1u);
  EXPECT_EQ(ItemOf(*f.flies, b.binders[0]), (Item{f.penguin}));
}

TEST(BindingTest, OffPathPamela) {
  FlyingFixture f;
  // "Pamela has three tuples in the relation that are applicable. However
  // ... Pamela has only one immediate predecessor, namely that all Amazing
  // Flying Penguins are flying creatures."
  Binding b = ComputeBinding(*f.flies, {f.pamela}).value();
  ASSERT_EQ(b.binders.size(), 1u);
  EXPECT_EQ(ItemOf(*f.flies, b.binders[0]), (Item{f.afp}));
}

TEST(BindingTest, OffPathPatriciaMultipleInheritanceNoConflict) {
  FlyingFixture f;
  // Patricia is an AFP and a galapagos penguin; nothing is asserted about
  // galapagos penguins, so the AFP tuple is her only immediate predecessor.
  Binding b = ComputeBinding(*f.flies, {f.patricia}).value();
  ASSERT_EQ(b.binders.size(), 1u);
  EXPECT_EQ(ItemOf(*f.flies, b.binders[0]), (Item{f.afp}));
}

TEST(BindingTest, NoApplicableTuples) {
  FlyingFixture f;
  NodeId rex = f.animal->AddInstance(Value::String("rex")).value();
  Binding b = ComputeBinding(*f.flies, {rex}).value();
  EXPECT_FALSE(b.self_bound);
  EXPECT_TRUE(b.binders.empty());
}

TEST(BindingTest, ClassItemBinding) {
  FlyingFixture f;
  // The class item "penguin" is self-bound; "galapagos_penguin" inherits
  // from penguin-.
  Binding self = ComputeBinding(*f.flies, {f.penguin}).value();
  EXPECT_TRUE(self.self_bound);
  Binding inherited = ComputeBinding(*f.flies, {f.galapagos}).value();
  ASSERT_EQ(inherited.binders.size(), 1u);
  EXPECT_EQ(ItemOf(*f.flies, inherited.binders[0]), (Item{f.penguin}));
}

TEST(BindingTest, NoPreemptionModeReturnsAllApplicable) {
  FlyingFixture f;
  InferenceOptions options;
  options.preemption = PreemptionMode::kNone;
  Binding b = ComputeBinding(*f.flies, {f.paul}, options).value();
  EXPECT_EQ(b.binders.size(), 2u);  // bird+ and penguin-
}

TEST(BindingTest, OnPathPatriciaConflicts) {
  // Appendix: "on-path preemption would suggest that since Patricia is a
  // Galapagos penguin, it may or may not be able to fly, in spite of its
  // being an amazing flying penguin": the path penguin -> galapagos ->
  // patricia avoids the asserted AFP item, so penguin- also binds.
  FlyingFixture f;
  InferenceOptions options;
  options.preemption = PreemptionMode::kOnPath;
  Binding b = ComputeBinding(*f.flies, {f.patricia}, options).value();
  std::vector<Item> binder_items;
  for (TupleId id : b.binders) binder_items.push_back(ItemOf(*f.flies, id));
  EXPECT_EQ(b.binders.size(), 2u);
  EXPECT_NE(std::find(binder_items.begin(), binder_items.end(),
                      Item{f.penguin}),
            binder_items.end());
  EXPECT_NE(std::find(binder_items.begin(), binder_items.end(), Item{f.afp}),
            binder_items.end());
}

TEST(BindingTest, OnPathPamelaDoesNotConflict) {
  // Pamela is only an AFP: every path from penguin to pamela passes
  // through the asserted AFP item, so penguin- is preempted even on-path.
  FlyingFixture f;
  InferenceOptions options;
  options.preemption = PreemptionMode::kOnPath;
  Binding b = ComputeBinding(*f.flies, {f.pamela}, options).value();
  ASSERT_EQ(b.binders.size(), 1u);
  EXPECT_EQ(ItemOf(*f.flies, b.binders[0]), (Item{f.afp}));
}

TEST(BindingTest, OnPathSearchLimitSurfaces) {
  FlyingFixture f;
  InferenceOptions options;
  options.preemption = PreemptionMode::kOnPath;
  options.on_path_search_limit = 1;
  Result<Binding> b = ComputeBinding(*f.flies, {f.patricia}, options);
  EXPECT_TRUE(b.status().IsResourceExhausted());
}

TEST(BindingTest, PreferenceEdgeBreaksTie) {
  // Two incomparable classes assert opposite truths about a shared
  // instance; a preference edge resolves the tie (Appendix).
  Database db;
  Hierarchy* h = db.CreateHierarchy("things").value();
  NodeId a = h->AddClass("a").value();
  NodeId b = h->AddClass("b").value();
  NodeId x = h->AddInstance(Value::String("x"), a).value();
  ASSERT_TRUE(h->AddEdge(b, x).ok());
  HierarchicalRelation* r =
      db.CreateRelation("r", {{"v", "things"}}).value();
  ASSERT_TRUE(r->Insert({a}, Truth::kPositive).ok());
  ASSERT_TRUE(r->Insert({b}, Truth::kNegative).ok());

  Binding before = ComputeBinding(*r, {x}).value();
  EXPECT_EQ(before.binders.size(), 2u);  // conflict-shaped

  ASSERT_TRUE(h->AddPreferenceEdge(a, b).ok());  // b binds more strongly
  Binding after = ComputeBinding(*r, {x}).value();
  ASSERT_EQ(after.binders.size(), 1u);
  EXPECT_EQ(r->tuple(after.binders[0]).item, (Item{b}));
}

TEST(BindingTest, ExcludedTuplesAreInvisible) {
  FlyingFixture f;
  // Excluding the AFP tuple re-exposes penguin- for Pamela.
  std::optional<TupleId> afp_id = f.flies->FindItem({f.afp});
  ASSERT_TRUE(afp_id.has_value());
  std::vector<bool> exclude(*afp_id + 1, false);
  exclude[*afp_id] = true;
  Binding b =
      ComputeBindingExcluding(*f.flies, {f.pamela}, exclude).value();
  ASSERT_EQ(b.binders.size(), 1u);
  EXPECT_EQ(ItemOf(*f.flies, b.binders[0]), (Item{f.penguin}));
}

TEST(BindingTest, TupleBindingGraphForPatricia) {
  FlyingFixture f;
  // Fig. 1d: bird+ -> penguin- -> afp+ -> patricia.
  TupleBindingGraph g = BuildTupleBindingGraph(*f.flies, {f.patricia});
  ASSERT_EQ(g.nodes.size(), 3u);
  ASSERT_EQ(g.immediate_predecessors.size(), 1u);
  EXPECT_EQ(ItemOf(*f.flies, g.nodes[g.immediate_predecessors[0]]),
            (Item{f.afp}));
  // Chain edges: bird -> penguin, penguin -> afp, afp -> item.
  auto index_of = [&](const Item& item) {
    for (size_t i = 0; i < g.nodes.size(); ++i) {
      if (ItemOf(*f.flies, g.nodes[i]) == item) return i;
    }
    return size_t{999};
  };
  size_t bird_i = index_of({f.bird});
  size_t penguin_i = index_of({f.penguin});
  size_t afp_i = index_of({f.afp});
  EXPECT_EQ(g.edges[bird_i], (std::vector<size_t>{penguin_i}));
  EXPECT_EQ(g.edges[penguin_i], (std::vector<size_t>{afp_i}));
  EXPECT_EQ(g.edges[afp_i],
            (std::vector<size_t>{TupleBindingGraph::kItemNode}));
}

TEST(BindingTest, TupleBindingGraphSelfBound) {
  FlyingFixture f;
  TupleBindingGraph g = BuildTupleBindingGraph(*f.flies, {f.peter});
  ASSERT_EQ(g.immediate_predecessors.size(), 1u);
  EXPECT_EQ(ItemOf(*f.flies, g.nodes[g.immediate_predecessors[0]]),
            (Item{f.peter}));
}

}  // namespace
}  // namespace hirel

#include "common/bitset.h"

#include <gtest/gtest.h>

namespace hirel {
namespace {

TEST(BitsetTest, StartsAllZero) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.Count(), 0u);
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(b.Test(i));
}

TEST(BitsetTest, SetClearTest) {
  DynamicBitset b(100);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(99);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(99));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitsetTest, UnionWith) {
  DynamicBitset a(70), b(70);
  a.Set(1);
  b.Set(65);
  a.UnionWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(65));
  EXPECT_FALSE(b.Test(1));
}

TEST(BitsetTest, IntersectWith) {
  DynamicBitset a(70), b(70);
  a.Set(5);
  a.Set(66);
  b.Set(66);
  a.IntersectWith(b);
  EXPECT_FALSE(a.Test(5));
  EXPECT_TRUE(a.Test(66));
}

TEST(BitsetTest, Intersects) {
  DynamicBitset a(128), b(128);
  a.Set(100);
  EXPECT_FALSE(a.Intersects(b));
  b.Set(100);
  EXPECT_TRUE(a.Intersects(b));
}

TEST(BitsetTest, ResetClearsBitsKeepsSize) {
  DynamicBitset b(10);
  b.Set(3);
  b.Reset();
  EXPECT_EQ(b.size(), 10u);
  EXPECT_TRUE(b.None());
}

TEST(BitsetTest, ToVector) {
  DynamicBitset b(200);
  b.Set(0);
  b.Set(64);
  b.Set(199);
  EXPECT_EQ(b.ToVector(), (std::vector<uint32_t>{0, 64, 199}));
}

TEST(BitsetTest, ResizeGrowsWithZeros) {
  DynamicBitset b(10);
  b.Set(9);
  b.Resize(100);
  EXPECT_TRUE(b.Test(9));
  EXPECT_FALSE(b.Test(50));
  EXPECT_EQ(b.Count(), 1u);
}

TEST(BitsetTest, ResizeShrinkDropsHighBits) {
  DynamicBitset b(100);
  b.Set(90);
  b.Set(5);
  b.Resize(10);
  EXPECT_EQ(b.Count(), 1u);
  EXPECT_TRUE(b.Test(5));
  // Growing back must not resurrect the dropped bit.
  b.Resize(100);
  EXPECT_FALSE(b.Test(90));
}

TEST(BitsetTest, Equality) {
  DynamicBitset a(64), b(64);
  EXPECT_EQ(a, b);
  a.Set(10);
  EXPECT_FALSE(a == b);
  b.Set(10);
  EXPECT_EQ(a, b);
}

TEST(BitsetTest, EmptyBitset) {
  DynamicBitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.None());
  EXPECT_TRUE(b.ToVector().empty());
}

}  // namespace
}  // namespace hirel

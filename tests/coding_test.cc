#include "io/coding.h"

#include <gtest/gtest.h>

#include <limits>

namespace hirel {
namespace {

TEST(CodingTest, VarintRoundTrip) {
  std::string buf;
  std::vector<uint64_t> values{0, 1, 127, 128, 300, 16383, 16384,
                               0xffffffffULL,
                               std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) PutVarint64(&buf, v);
  Decoder decoder(buf);
  for (uint64_t v : values) {
    EXPECT_EQ(decoder.GetVarint64().value(), v);
  }
  EXPECT_TRUE(decoder.done());
}

TEST(CodingTest, Varint32RangeCheck) {
  std::string buf;
  PutVarint64(&buf, 0x100000000ULL);
  Decoder decoder(buf);
  EXPECT_TRUE(decoder.GetVarint32().status().IsCorruption());
}

TEST(CodingTest, TruncatedVarintIsCorruption) {
  std::string buf;
  PutVarint64(&buf, 300);
  Decoder decoder(std::string_view(buf).substr(0, 1));
  EXPECT_TRUE(decoder.GetVarint64().status().IsCorruption());
}

TEST(CodingTest, Fixed8RoundTrip) {
  std::string buf;
  PutFixed8(&buf, 0);
  PutFixed8(&buf, 255);
  Decoder decoder(buf);
  EXPECT_EQ(decoder.GetFixed8().value(), 0);
  EXPECT_EQ(decoder.GetFixed8().value(), 255);
  EXPECT_TRUE(decoder.GetFixed8().status().IsCorruption());
}

TEST(CodingTest, LengthPrefixedStringRoundTrip) {
  std::string buf;
  PutLengthPrefixedString(&buf, "");
  PutLengthPrefixedString(&buf, "hello");
  std::string binary("\x00\x01\xff", 3);
  PutLengthPrefixedString(&buf, binary);
  Decoder decoder(buf);
  EXPECT_EQ(decoder.GetLengthPrefixedString().value(), "");
  EXPECT_EQ(decoder.GetLengthPrefixedString().value(), "hello");
  EXPECT_EQ(decoder.GetLengthPrefixedString().value(), binary);
}

TEST(CodingTest, TruncatedStringIsCorruption) {
  std::string buf;
  PutLengthPrefixedString(&buf, "hello");
  Decoder decoder(std::string_view(buf).substr(0, 3));
  EXPECT_TRUE(decoder.GetLengthPrefixedString().status().IsCorruption());
}

TEST(CodingTest, DoubleRoundTrip) {
  std::string buf;
  std::vector<double> values{0.0, -1.5, 3.14159, 1e300, -1e-300};
  for (double v : values) PutDouble(&buf, v);
  Decoder decoder(buf);
  for (double v : values) {
    EXPECT_DOUBLE_EQ(decoder.GetDouble().value(), v);
  }
  Decoder short_decoder(std::string_view(buf).substr(0, 4));
  EXPECT_TRUE(short_decoder.GetDouble().status().IsCorruption());
}

TEST(CodingTest, RemainingTracksPosition) {
  std::string buf;
  PutVarint64(&buf, 5);
  PutVarint64(&buf, 6);
  Decoder decoder(buf);
  EXPECT_EQ(decoder.remaining(), 2u);
  ASSERT_TRUE(decoder.GetVarint64().ok());
  EXPECT_EQ(decoder.remaining(), 1u);
  EXPECT_FALSE(decoder.done());
  ASSERT_TRUE(decoder.GetVarint64().ok());
  EXPECT_TRUE(decoder.done());
}

}  // namespace
}  // namespace hirel

#include "extensions/compress.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/consolidate.h"
#include "core/explicate.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

/// A tree version of the flying-creatures hierarchy (no patricia
/// double-parent), for compression tests.
struct TreeZoo {
  TreeZoo() {
    animal = db.CreateHierarchy("animal").value();
    bird = animal->AddClass("bird").value();
    canary = animal->AddClass("canary", bird).value();
    penguin = animal->AddClass("penguin", bird).value();
    afp = animal->AddClass("afp", penguin).value();
    tweety = animal->AddInstance(Value::String("tweety"), canary).value();
    paul = animal->AddInstance(Value::String("paul"), penguin).value();
    pamela = animal->AddInstance(Value::String("pamela"), afp).value();
    peter = animal->AddInstance(Value::String("peter"), afp).value();
  }
  Database db;
  Hierarchy* animal;
  NodeId bird, canary, penguin, afp;
  NodeId tweety, paul, pamela, peter;
};

std::vector<NodeId> AtomsOf(const HierarchicalRelation& r) {
  std::vector<NodeId> atoms;
  for (const Item& item : Extension(r).value()) atoms.push_back(item[0]);
  return atoms;
}

TEST(CompressTest, RediscoversTheExceptionStructure) {
  TreeZoo zoo;
  // Target: the flyers = {tweety, pamela, peter}. The DP beats the
  // exception encoding (+bird, -penguin, +afp: 3 tuples) with the two
  // positive islands: +tweety (tie with +canary broken towards fewer
  // flips) and +afp.
  HierarchicalRelation minimal =
      CompressExtension("flies", zoo.animal,
                        {zoo.tweety, zoo.pamela, zoo.peter})
          .value();
  EXPECT_EQ(minimal.size(), 2u);
  EXPECT_EQ(minimal.TruthAt({zoo.tweety}), Truth::kPositive);
  EXPECT_EQ(minimal.TruthAt({zoo.afp}), Truth::kPositive);
}

TEST(CompressTest, PrefersExceptionEncodingWhenItWins) {
  TreeZoo zoo;
  // Three positive islands (canary, duck, afp) against a single hole
  // (paul): the default-with-exception encoding +bird, -paul (2 tuples)
  // beats the three island tuples.
  NodeId duck = zoo.animal->AddClass("duck", zoo.bird).value();
  NodeId donald =
      zoo.animal->AddInstance(Value::String("donald"), duck).value();
  NodeId daisy =
      zoo.animal->AddInstance(Value::String("daisy"), duck).value();
  HierarchicalRelation minimal =
      CompressExtension("flies", zoo.animal,
                        {zoo.tweety, donald, daisy, zoo.pamela, zoo.peter})
          .value();
  EXPECT_EQ(minimal.size(), 2u);
  EXPECT_EQ(minimal.TruthAt({zoo.paul}), Truth::kNegative);
  // The positive default sits on bird or the root.
  bool has_default = minimal.TruthAt({zoo.bird}) == Truth::kPositive ||
                     minimal.TruthAt({zoo.animal->root()}) ==
                         Truth::kPositive;
  EXPECT_TRUE(has_default);
}

TEST(CompressTest, ExtensionRoundTrips) {
  TreeZoo zoo;
  std::vector<std::vector<NodeId>> targets{
      {},
      {zoo.tweety},
      {zoo.paul},
      {zoo.tweety, zoo.paul, zoo.pamela, zoo.peter},
      {zoo.pamela, zoo.peter},
      {zoo.tweety, zoo.peter},
  };
  for (const auto& target : targets) {
    HierarchicalRelation minimal =
        CompressExtension("r", zoo.animal, target).value();
    std::vector<NodeId> atoms = AtomsOf(minimal);
    std::vector<NodeId> expected = target;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(atoms, expected);
  }
}

TEST(CompressTest, EmptyExtensionNeedsNoTuples) {
  TreeZoo zoo;
  HierarchicalRelation minimal =
      CompressExtension("r", zoo.animal, {}).value();
  EXPECT_TRUE(minimal.empty());
}

TEST(CompressTest, FullDomainIsOneTuple) {
  TreeZoo zoo;
  HierarchicalRelation minimal =
      CompressExtension("r", zoo.animal,
                        {zoo.tweety, zoo.paul, zoo.pamela, zoo.peter})
          .value();
  EXPECT_EQ(minimal.size(), 1u);
  // One positive tuple on some ancestor of all instances (bird or the
  // root — both cover exactly the four instances; the DP may pick either).
  const HTuple& t = minimal.tuple(minimal.TupleIds()[0]);
  EXPECT_EQ(t.truth, Truth::kPositive);
  EXPECT_TRUE(t.item[0] == zoo.bird || t.item[0] == zoo.animal->root());
}

TEST(CompressTest, ResultIsIrredundant) {
  TreeZoo zoo;
  HierarchicalRelation minimal =
      CompressExtension("r", zoo.animal, {zoo.pamela, zoo.peter}).value();
  HierarchicalRelation copy = minimal;
  EXPECT_EQ(ConsolidateInPlace(copy).value(), 0u);
}

TEST(CompressTest, RejectsDagHierarchies) {
  testing::FlyingFixture f;  // patricia has two parents
  Result<HierarchicalRelation> r =
      CompressExtension("r", f.animal, {f.tweety});
  EXPECT_TRUE(r.status().IsNotSupported());
}

TEST(CompressTest, RejectsNonInstanceTargets) {
  TreeZoo zoo;
  Result<HierarchicalRelation> r =
      CompressExtension("r", zoo.animal, {zoo.bird});
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(CompressTest, CompressInPlaceShrinksVerboseRelations) {
  TreeZoo zoo;
  HierarchicalRelation* verbose =
      zoo.db.CreateRelation("flies", {{"who", "animal"}}).value();
  // The flat encoding: one tuple per flyer.
  ASSERT_TRUE(verbose->Insert({zoo.tweety}, Truth::kPositive).ok());
  ASSERT_TRUE(verbose->Insert({zoo.pamela}, Truth::kPositive).ok());
  ASSERT_TRUE(verbose->Insert({zoo.peter}, Truth::kPositive).ok());
  std::vector<Item> before = Extension(*verbose).value();
  size_t saved = CompressInPlace(*verbose).value();
  EXPECT_EQ(saved, 1u);  // 3 atom tuples -> {+tweety, +afp}
  EXPECT_EQ(verbose->size(), 2u);
  EXPECT_EQ(Extension(*verbose).value(), before);
  // With one more flyer the class encoding wins outright.
  verbose->Clear();
  for (NodeId n : {zoo.tweety, zoo.pamela, zoo.peter, zoo.paul}) {
    ASSERT_TRUE(verbose->Insert({n}, Truth::kPositive).ok());
  }
  saved = CompressInPlace(*verbose).value();
  EXPECT_EQ(saved, 3u);  // 4 tuples -> 1 (+bird or +animal)
  EXPECT_EQ(verbose->size(), 1u);
}

TEST(CompressTest, CompressInPlaceRequiresSingleAttribute) {
  testing::RespectsFixture f;
  EXPECT_TRUE(CompressInPlace(*f.respects).status().IsNotSupported());
}

// Property: on random trees and random target sets, the DP's result (a)
// round-trips the extension, (b) is irredundant, and (c) is no larger than
// the naive one-tuple-per-atom encoding and the greedy consolidated form.
class CompressProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompressProperty, MinimalEncodingInvariants) {
  Random rng(GetParam());
  Database db;
  Hierarchy* h = db.CreateHierarchy("d").value();
  std::vector<NodeId> classes{h->root()};
  for (int c = 0; c < 8; ++c) {
    classes.push_back(
        h->AddClass("c" + std::to_string(c),
                    classes[rng.Index(classes.size())])
            .value());
  }
  std::vector<NodeId> atoms;
  for (int i = 0; i < 20; ++i) {
    atoms.push_back(
        h->AddInstance(Value::String("i" + std::to_string(i)),
                       classes[rng.Index(classes.size())])
            .value());
  }
  std::vector<NodeId> target;
  for (NodeId a : atoms) {
    if (rng.Bernoulli(0.5)) target.push_back(a);
  }

  HierarchicalRelation minimal =
      CompressExtension("r", h, target).value();
  // (a) round trip.
  std::vector<NodeId> got = AtomsOf(minimal);
  std::vector<NodeId> expected = target;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);
  // (b) irredundant.
  HierarchicalRelation copy = minimal;
  EXPECT_EQ(ConsolidateInPlace(copy).value(), 0u);
  // (c) never worse than the flat encoding.
  EXPECT_LE(minimal.size(), target.size() == 0 ? 0 : target.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressProperty,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace hirel

// Concurrent readers: queries are const and must be safe to run in
// parallel even though reachability caches are built lazily. (Writers are
// single-threaded by contract; these tests freeze the database first.)
//
// Run under TSan to see the point of the double-checked cache locks.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "algebra/select.h"
#include "algebra/setops.h"
#include "core/explicate.h"
#include "core/inference.h"
#include "core/subsumption_cache.h"
#include "obs/alerts.h"
#include "obs/metrics.h"
#include "obs/query_stats.h"
#include "obs/telemetry.h"
#include "obs/wait.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

TEST(ConcurrencyTest, ParallelInferenceOnSharedDatabase) {
  testing::FlyingFixture f;
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 2000;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  std::vector<NodeId> atoms = f.animal->Instances();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        NodeId atom = atoms[(t + q) % atoms.size()];
        Result<Truth> verdict = InferTruth(*f.flies, {atom});
        if (!verdict.ok()) {
          ++failures;
          continue;
        }
        bool expected = atom != f.paul;  // only paul is grounded
        if ((verdict.value() == Truth::kPositive) != expected) ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, ParallelColdCacheReachability) {
  // All threads race to trigger the first closure build.
  for (int trial = 0; trial < 10; ++trial) {
    Database db;
    Hierarchy* h = testing::BuildTreeHierarchy(db, "d", 3, 3, 4);
    std::vector<NodeId> instances = h->Instances();
    NodeId root = h->root();
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        for (size_t i = t; i < instances.size(); i += 8) {
          if (!h->Subsumes(root, instances[i])) ++failures;
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(failures.load(), 0) << "trial " << trial;
  }
}

TEST(ConcurrencyTest, ParallelOperatorsOnSharedRelations) {
  testing::LovesFixture f;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int q = 0; q < 50; ++q) {
        Result<HierarchicalRelation> both = Intersect(*f.jill, *f.jack);
        if (!both.ok() ||
            Extension(*both).value() !=
                (std::vector<Item>{{f.base.peter}})) {
          ++failures;
        }
        Result<HierarchicalRelation> sel =
            SelectEquals(*f.jill, 0, f.base.penguin);
        if (!sel.ok()) ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, ConcurrentSubsumptionCacheGets) {
  testing::LovesFixture f;
  const std::string jill_graph = SubsumptionGraphToString(
      *f.jill, BuildSubsumptionGraph(*f.jill));
  const std::string jack_graph = SubsumptionGraphToString(
      *f.jack, BuildSubsumptionGraph(*f.jack));

  constexpr int kThreads = 8;
  constexpr int kGetsPerThread = 200;
  for (int trial = 0; trial < 5; ++trial) {
    SubsumptionCache cache;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int q = 0; q < kGetsPerThread; ++q) {
          // Alternate names so cold misses for different relations build
          // concurrently and rehashes race with reads of other entries.
          const HierarchicalRelation& rel = (t + q) % 2 == 0 ? *f.jill
                                                             : *f.jack;
          const std::string& expected =
              (t + q) % 2 == 0 ? jill_graph : jack_graph;
          const SubsumptionGraph& graph = cache.Get(rel);
          if (SubsumptionGraphToString(rel, graph) != expected) ++failures;
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(failures.load(), 0) << "trial " << trial;
    // Same-name misses coalesce under the entry latch: exactly one build
    // per relation, every other Get is a hit, none is lost.
    SubsumptionCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.misses, 2u) << "trial " << trial;
    EXPECT_EQ(stats.hits + stats.misses,
              static_cast<size_t>(kThreads) * kGetsPerThread)
        << "trial " << trial;
  }
}

TEST(ConcurrencyTest, ReachabilitySnapshotColdBuildAndPinnedQueries) {
  for (int trial = 0; trial < 5; ++trial) {
    Database db;
    Hierarchy* h = testing::BuildTreeHierarchy(db, "d", 3, 3, 4);
    std::vector<NodeId> instances = h->Instances();
    NodeId root = h->root();

    // Race the cold build: every thread pins its own snapshot first.
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        std::shared_ptr<const ReachabilitySnapshot> snap = h->reachability();
        for (size_t i = t; i < instances.size(); i += 8) {
          NodeId v = instances[i];
          bool reachable =
              root == v ||
              snap->Query(root, v) == ReachabilitySnapshot::Answer::kYes;
          if (!reachable) ++failures;
          if (!h->Subsumes(root, v)) ++failures;
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(failures.load(), 0) << "trial " << trial;

    // A pinned snapshot answers from its own version even while the
    // hierarchy moves on (the mutation publishes a fresh snapshot).
    std::shared_ptr<const ReachabilitySnapshot> pinned = h->reachability();
    NodeId probe = instances.front();
    ASSERT_TRUE(h->AddClass("late_arrival").ok());
    EXPECT_EQ(pinned->Query(root, probe),
              ReachabilitySnapshot::Answer::kYes);
    EXPECT_TRUE(h->Subsumes(root, probe));
  }
}

TEST(ConcurrencyTest, QueryHistoryRingWriterWithConcurrentReaders) {
  // Single writer (the executor), concurrent snapshot readers under the
  // ring's shared lock. A snapshot is a consistent window: complete
  // records, consecutive ids oldest-first, never more than capacity.
  obs::QueryHistoryRing ring(16);
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        std::vector<std::shared_ptr<const obs::QueryStats>> entries =
            ring.Snapshot();
        if (entries.size() > ring.capacity()) ++failures;
        for (size_t i = 0; i < entries.size(); ++i) {
          // wall_ns mirrors id so a torn record would be detectable.
          if (entries[i]->wall_ns != entries[i]->id * 3) ++failures;
          if (entries[i]->kind != "select") ++failures;
          if (i > 0 && entries[i]->id != entries[i - 1]->id + 1) ++failures;
        }
      }
    });
  }

  for (uint64_t i = 1; i <= 10'000; ++i) {
    obs::QueryStats stats;
    stats.id = i;
    stats.wall_ns = i * 3;
    stats.kind = "select";
    stats.statement = "SELECT * FROM r;";
    ring.Append(std::move(stats));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(ring.total_recorded(), 10'000u);
  EXPECT_EQ(ring.Snapshot().size(), 16u);
}

TEST(ConcurrencyTest, TelemetrySamplerTicksAgainstWritersAndReaders) {
  // The sampler thread visits the registry while kernels write metric
  // values (relaxed atomics) and other threads register new metrics
  // (unique map lock) and snapshot the series rings (shared series lock).
  // TSan checks the lock discipline; the assertions check consistency.
  obs::MetricsRegistry registry;
  obs::Counter& hot = registry.counter("race.hot");
  obs::TelemetrySampler sampler(/*ring_capacity=*/8);
  sampler.SetRegistry(&registry);

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::thread ticker([&] {
    while (!done.load(std::memory_order_acquire)) sampler.Tick();
  });
  std::thread writer([&] {
    while (!done.load(std::memory_order_acquire)) {
      hot.Add(1);
      registry.gauge("race.gauge").Set(42);
      registry.histogram("race.hist").Record(1000);
    }
  });
  std::thread registrar([&] {
    for (int i = 0; i < 200; ++i) registry.counter("race.new" + std::to_string(i)).Add(1);
  });
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      for (const obs::TelemetrySampler::SeriesSnapshot& s :
           sampler.Snapshot()) {
        if (s.samples.size() > sampler.ring_capacity()) ++failures;
        uint64_t prev_seq = 0;
        for (const obs::TelemetrySampler::Sample& sample : s.samples) {
          // Rings hold strictly increasing tick sequence numbers; a
          // torn ring would break the order.
          if (sample.seq <= prev_seq) ++failures;
          prev_seq = sample.seq;
        }
      }
    }
  });

  registrar.join();
  std::this_thread::yield();
  done.store(true, std::memory_order_release);
  ticker.join();
  writer.join();
  reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(sampler.ticks(), 0u);
  bool found_hot = false;
  for (const obs::TelemetrySampler::SeriesSnapshot& s : sampler.Snapshot()) {
    if (s.name == "race.hot") found_hot = true;
  }
  EXPECT_TRUE(found_hot);

  // Wait sites take the same concurrent traffic: many threads recording
  // into one site while another snapshots.
  obs::WaitEventRegistry& waits = obs::WaitEventRegistry::Global();
  obs::WaitEventRegistry::Site& site =
      waits.RegisterSite("test.race_site", obs::WaitClass::kLatch);
  std::atomic<bool> wdone{false};
  std::thread wsnap([&] {
    while (!wdone.load(std::memory_order_acquire)) waits.Snapshot();
  });
  std::vector<std::thread> recorders;
  for (int t = 0; t < 4; ++t) {
    recorders.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) site.Record(0, 100);
    });
  }
  for (std::thread& r : recorders) r.join();
  wdone.store(true, std::memory_order_release);
  wsnap.join();
  bool found_site = false;
  for (const obs::WaitEventRegistry::SiteSnapshot& s : waits.Snapshot()) {
    if (s.name != "test.race_site") continue;
    found_site = true;
    EXPECT_GE(s.count, 40'000u);
    EXPECT_GE(s.total_ns, 4'000'000u);
  }
  EXPECT_TRUE(found_site);
}

TEST(ConcurrencyTest, AlertEvaluationRacesRuleChurnAndReaders) {
  // The sampler thread evaluates alert rules on every tick (OnTick takes
  // the manager's mutex, then reads the rings via the sampler's shared
  // lock) while other threads churn rules, snapshot state, drain capture
  // requests, and append query history the watchdog scans. TSan checks
  // that the single manager mutex plus the sampler's lock ordering is
  // race-free; the assertions check the state machine stayed coherent.
  obs::MetricsRegistry registry;
  obs::QueryHistoryRing ring(/*capacity=*/32);
  obs::AlertManager alerts;
  alerts.Configure(&registry, &ring);
  obs::WatchdogConfig wd = alerts.watchdog();
  wd.query_budget_ms = 0;  // every appended query breaches
  alerts.set_watchdog(wd);
  obs::TelemetrySampler sampler(/*ring_capacity=*/8);
  sampler.SetRegistry(&registry);
  sampler.SetAlertManager(&alerts);

  obs::AlertRule steady;
  steady.name = "steady";
  steady.metric = "race.hot";
  steady.op = obs::AlertOp::kGe;
  steady.threshold = 0;
  ASSERT_TRUE(alerts.CreateAlert(steady).ok());

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::thread ticker([&] {
    while (!done.load(std::memory_order_acquire)) sampler.Tick();
  });
  std::thread writer([&] {
    uint64_t id = 1;
    while (!done.load(std::memory_order_acquire)) {
      registry.counter("race.hot").Add(1);
      obs::QueryStats stats;
      stats.id = id++;
      stats.wall_ns = 5'000'000;  // 5 ms, over the 0 ms budget
      stats.kind = "select";
      ring.Append(std::move(stats));
    }
  });
  std::thread churner([&] {
    for (int i = 0; i < 500; ++i) {
      obs::AlertRule rule;
      rule.name = "churn";
      rule.metric = "race.hot";
      rule.op = i % 2 ? obs::AlertOp::kGt : obs::AlertOp::kLt;
      rule.threshold = i % 2 ? -1 : 0;
      if (!alerts.CreateAlert(rule).ok()) ++failures;
      if (!alerts.DropAlert("churn").ok()) ++failures;
    }
  });
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      for (const obs::AlertSnapshot& a : alerts.Snapshot()) {
        // fires only moves forward; a torn snapshot would regress it.
        if (a.rule.name == "steady" && a.fires == 0 &&
            a.state == obs::AlertState::kResolved) {
          ++failures;
        }
      }
      alerts.FiringCount();
      obs::DeriveHealth(alerts.Snapshot());
      alerts.TakePendingCaptures();
    }
  });

  churner.join();
  std::this_thread::yield();
  done.store(true, std::memory_order_release);
  ticker.join();
  writer.join();
  reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(sampler.ticks(), 0u);
  bool steady_fired = false;
  bool watchdog_fired = false;
  for (const obs::AlertSnapshot& a : alerts.Snapshot()) {
    if (a.rule.name == "steady") steady_fired = a.fires > 0;
    if (a.rule.name == "watchdog_slow_query") watchdog_fired = a.fires > 0;
  }
  EXPECT_TRUE(steady_fired);
  EXPECT_TRUE(watchdog_fired);
  // Dropping a firing rule forfeits its resolve, so fired only bounds
  // resolved from above.
  EXPECT_GE(registry.counter("alerts.fired").value(),
            registry.counter("alerts.resolved").value());
}

TEST(ConcurrencyTest, ParallelReadersOfPatchedCacheEntry) {
  // A single writer mutates the relation between rounds, then eight
  // readers race to Get: the first fetch patches the stale entry in place
  // under its build latch while the rest coalesce behind it, and every
  // later fetch hits. The interesting case under TSan is the patch
  // rewriting the cached graph's vectors while peers wait on the same
  // entry — all reads must still agree with a from-scratch build.
  testing::FlyingFixture f;
  SubsumptionCache& cache = f.db.subsumption_cache();
  cache.Get(*f.flies);
  for (int round = 0; round < 20; ++round) {
    TupleId added =
        f.flies
            ->Insert({f.tweety},
                     round % 2 ? Truth::kNegative : Truth::kPositive)
            .value();
    SubsumptionGraph expected = BuildSubsumptionGraph(*f.flies);
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        for (int q = 0; q < 50; ++q) {
          const SubsumptionGraph& g = cache.Get(*f.flies, /*threads=*/2);
          if (g.nodes != expected.nodes ||
              g.successors != expected.successors ||
              g.predecessors != expected.predecessors ||
              g.sources != expected.sources) {
            ++failures;
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(failures.load(), 0) << "round " << round;
    ASSERT_TRUE(f.flies->Erase(added).ok());
  }
  EXPECT_GT(cache.stats().patches, 0u);
}

}  // namespace
}  // namespace hirel

// Concurrent readers: queries are const and must be safe to run in
// parallel even though reachability caches are built lazily. (Writers are
// single-threaded by contract; these tests freeze the database first.)
//
// Run under TSan to see the point of the double-checked cache locks.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "algebra/select.h"
#include "algebra/setops.h"
#include "core/explicate.h"
#include "core/inference.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

TEST(ConcurrencyTest, ParallelInferenceOnSharedDatabase) {
  testing::FlyingFixture f;
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 2000;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  std::vector<NodeId> atoms = f.animal->Instances();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        NodeId atom = atoms[(t + q) % atoms.size()];
        Result<Truth> verdict = InferTruth(*f.flies, {atom});
        if (!verdict.ok()) {
          ++failures;
          continue;
        }
        bool expected = atom != f.paul;  // only paul is grounded
        if ((verdict.value() == Truth::kPositive) != expected) ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, ParallelColdCacheReachability) {
  // All threads race to trigger the first closure build.
  for (int trial = 0; trial < 10; ++trial) {
    Database db;
    Hierarchy* h = testing::BuildTreeHierarchy(db, "d", 3, 3, 4);
    std::vector<NodeId> instances = h->Instances();
    NodeId root = h->root();
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        for (size_t i = t; i < instances.size(); i += 8) {
          if (!h->Subsumes(root, instances[i])) ++failures;
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(failures.load(), 0) << "trial " << trial;
  }
}

TEST(ConcurrencyTest, ParallelOperatorsOnSharedRelations) {
  testing::LovesFixture f;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int q = 0; q < 50; ++q) {
        Result<HierarchicalRelation> both = Intersect(*f.jill, *f.jack);
        if (!both.ok() ||
            Extension(*both).value() !=
                (std::vector<Item>{{f.base.peter}})) {
          ++failures;
        }
        Result<HierarchicalRelation> sel =
            SelectEquals(*f.jill, 0, f.base.penguin);
        if (!sel.ok()) ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace hirel

#include "core/conflict.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/inference.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::FlyingFixture;
using testing::RespectsFixture;

TEST(ConflictTest, ConsistentDatabasesPass) {
  FlyingFixture f;
  EXPECT_TRUE(CheckAmbiguity(*f.flies).ok());
  RespectsFixture r(/*with_resolver=*/true);
  EXPECT_TRUE(CheckAmbiguity(*r.respects).ok());
}

TEST(ConflictTest, Fig3ConflictDetected) {
  RespectsFixture f(/*with_resolver=*/false);
  Status s = CheckAmbiguity(*f.respects);
  ASSERT_TRUE(s.IsConflict());
  EXPECT_NE(s.message().find("obsequious_student"), std::string::npos);
  EXPECT_NE(s.message().find("incoherent_teacher"), std::string::npos);

  std::vector<ConflictSite> sites = FindConflicts(*f.respects).value();
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].item, (Item{f.obsequious, f.incoherent}));
  EXPECT_EQ(sites[0].binders.size(), 2u);
}

TEST(ConflictTest, SingleAttributeMultipleInheritanceConflict) {
  FlyingFixture f;
  // Assert that galapagos penguins specifically cannot fly; Patricia (both
  // galapagos and AFP) becomes conflicted ("then we have a conflict since
  // Patricia has two immediate predecessors in the tuple binding graph,
  // one of them positive, and the other negative").
  ASSERT_TRUE(f.flies->Insert({f.galapagos}, Truth::kNegative).ok());
  std::vector<ConflictSite> sites = FindConflicts(*f.flies).value();
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].item, (Item{f.patricia}));
  EXPECT_TRUE(InferTruth(*f.flies, {f.patricia}).status().IsConflict());
}

TEST(ConflictTest, ResolverTupleSilencesSite) {
  FlyingFixture f;
  ASSERT_TRUE(f.flies->Insert({f.galapagos}, Truth::kNegative).ok());
  // Resolve in Patricia's favour.
  ASSERT_TRUE(f.flies->Insert({f.patricia}, Truth::kPositive).ok());
  EXPECT_TRUE(CheckAmbiguity(*f.flies).ok());
  EXPECT_EQ(InferTruth(*f.flies, {f.patricia}).value(), Truth::kPositive);
}

TEST(ConflictTest, ExhaustiveAgreesWithMcdDetectorOffPath) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    testing::RandomFixtureOptions options;
    options.num_tuples = 6;
    testing::RandomDatabase rdb(seed, options);
    // RandomDatabase guarantees consistency; both detectors must agree.
    EXPECT_TRUE(FindConflicts(*rdb.relation()).value().empty())
        << "seed " << seed;
    EXPECT_TRUE(FindConflictsExhaustive(*rdb.relation()).value().empty())
        << "seed " << seed;
  }
}

TEST(ConflictTest, ExhaustiveFindsInjectedConflicts) {
  RespectsFixture f(/*with_resolver=*/false);
  std::vector<ConflictSite> sites =
      FindConflictsExhaustive(*f.respects).value();
  ASSERT_FALSE(sites.empty());
  // The MCD site must be among them.
  bool found = false;
  for (const ConflictSite& site : sites) {
    if (site.item == (Item{f.obsequious, f.incoherent})) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ConflictTest, ExhaustiveHonoursItemCap) {
  RespectsFixture f(false);
  Result<std::vector<ConflictSite>> r =
      FindConflictsExhaustive(*f.respects, {}, 16, /*max_items=*/2);
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST(ConflictTest, CompleteResolutionSetEnumeratesCommonSubsumees) {
  RespectsFixture f(false);
  std::vector<Item> complete =
      CompleteConflictResolutionSet(f.respects->schema(),
                                    {f.obsequious, f.teacher->root()},
                                    {f.student->root(), f.incoherent})
          .value();
  // Common subsumees: {obsequious, john} x {incoherent, jim}.
  EXPECT_EQ(complete.size(), 4u);
  EXPECT_NE(std::find(complete.begin(), complete.end(),
                      (Item{f.john, f.jim})),
            complete.end());
  EXPECT_NE(std::find(complete.begin(), complete.end(),
                      (Item{f.obsequious, f.incoherent})),
            complete.end());
}

TEST(ConflictTest, MinimalResolutionSetIsMaximalElements) {
  RespectsFixture f(false);
  std::vector<Item> minimal = MinimalConflictResolutionSet(
      f.respects->schema(), {f.obsequious, f.teacher->root()},
      {f.student->root(), f.incoherent});
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], (Item{f.obsequious, f.incoherent}));
}

TEST(ConflictTest, ResolutionSetsOfDisjointItemsAreEmpty) {
  RespectsFixture f(false);
  NodeId lazy = f.student->AddClass("lazy_student").value();
  std::vector<Item> complete =
      CompleteConflictResolutionSet(f.respects->schema(),
                                    {f.obsequious, f.incoherent},
                                    {lazy, f.incoherent})
          .value();
  EXPECT_TRUE(complete.empty());
}

TEST(ConflictTest, CompleteResolutionSetCap) {
  RespectsFixture f(false);
  Result<std::vector<Item>> r = CompleteConflictResolutionSet(
      f.respects->schema(), {f.student->root(), f.teacher->root()},
      {f.student->root(), f.teacher->root()}, /*max_items=*/3);
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST(ConflictTest, ResolveConflictInsertsMinimalSet) {
  RespectsFixture f(false);
  ASSERT_TRUE(CheckAmbiguity(*f.respects).IsConflict());
  ASSERT_TRUE(ResolveConflict(*f.respects,
                              {f.obsequious, f.teacher->root()},
                              {f.student->root(), f.incoherent},
                              Truth::kPositive)
                  .ok());
  EXPECT_TRUE(CheckAmbiguity(*f.respects).ok());
  EXPECT_EQ(f.respects->TruthAt({f.obsequious, f.incoherent}),
            Truth::kPositive);
  // Idempotent: items already asserted are skipped.
  EXPECT_TRUE(ResolveConflict(*f.respects,
                              {f.obsequious, f.teacher->root()},
                              {f.student->root(), f.incoherent},
                              Truth::kNegative)
                  .ok());
  EXPECT_EQ(f.respects->TruthAt({f.obsequious, f.incoherent}),
            Truth::kPositive);
}

TEST(ConflictTest, ComparableOppositesAreNotConflicts) {
  FlyingFixture f;
  // bird+ and penguin- are comparable: exception, not conflict.
  EXPECT_TRUE(FindConflicts(*f.flies).value().empty());
}

TEST(ConflictTest, Fig2ProductConflictNeedsBothAxes) {
  // The Cartesian product of two trees is not a tree: even with tree
  // hierarchies per attribute, (obsequious, teacher) and (student,
  // incoherent) are incomparable with a common descendant.
  RespectsFixture f(false);
  const Schema& schema = f.respects->schema();
  Item ot{f.obsequious, f.teacher->root()};
  Item si{f.student->root(), f.incoherent};
  EXPECT_FALSE(ItemComparable(schema, ot, si));
  EXPECT_FALSE(ItemMaximalCommonDescendants(schema, ot, si).empty());
}

}  // namespace
}  // namespace hirel

#include "core/consolidate.h"

#include <gtest/gtest.h>

#include "core/explicate.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::FlyingFixture;
using testing::RespectsFixture;

TEST(ConsolidateTest, Fig6RespectsConsolidation) {
  RespectsFixture f;
  // "the tuple stating that students do not respect incoherent teachers is
  // redundant ... Thus the tuple stating that obsequious students respect
  // incoherent teachers is also found redundant ... The final result ...
  // has exactly the same extension ... and yet has fewer tuples."
  std::vector<Item> extension_before = Extension(*f.respects).value();
  size_t removed = ConsolidateInPlace(*f.respects).value();
  EXPECT_EQ(removed, 2u);
  ASSERT_EQ(f.respects->size(), 1u);
  TupleId survivor = f.respects->TupleIds()[0];
  EXPECT_EQ(f.respects->tuple(survivor).item,
            (Item{f.obsequious, f.teacher->root()}));
  EXPECT_EQ(f.respects->tuple(survivor).truth, Truth::kPositive);
  EXPECT_EQ(Extension(*f.respects).value(), extension_before);
}

TEST(ConsolidateTest, FlyingRelationDropsOnlyPeter) {
  FlyingFixture f;
  // peter+ is redundant (immediate predecessor afp+ agrees); bird+,
  // penguin-, afp+ all flip truth values and must stay.
  std::vector<Item> extension_before = Extension(*f.flies).value();
  size_t removed = ConsolidateInPlace(*f.flies).value();
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(f.flies->size(), 3u);
  EXPECT_FALSE(f.flies->FindItem({f.peter}).has_value());
  EXPECT_EQ(Extension(*f.flies).value(), extension_before);
}

TEST(ConsolidateTest, BareNegativeIsRedundant) {
  // "A negated tuple without a (positive) tuple as a predecessor in the
  // relation subsumption graph is redundant" (universal negated tuple).
  Database db;
  Hierarchy* h = db.CreateHierarchy("d").value();
  NodeId a = h->AddClass("a").value();
  HierarchicalRelation* r = db.CreateRelation("r", {{"v", "d"}}).value();
  ASSERT_TRUE(r->Insert({a}, Truth::kNegative).ok());
  EXPECT_EQ(ConsolidateInPlace(*r).value(), 1u);
  EXPECT_TRUE(r->empty());
}

TEST(ConsolidateTest, TopLevelPositiveIsKept) {
  Database db;
  Hierarchy* h = db.CreateHierarchy("d").value();
  NodeId a = h->AddClass("a").value();
  HierarchicalRelation* r = db.CreateRelation("r", {{"v", "d"}}).value();
  ASSERT_TRUE(r->Insert({a}, Truth::kPositive).ok());
  EXPECT_EQ(ConsolidateInPlace(*r).value(), 0u);
  EXPECT_EQ(r->size(), 1u);
}

TEST(ConsolidateTest, CascadingRedundancy) {
  // a+ > b+ > c+: both b and c are redundant once processed top-down.
  Database db;
  Hierarchy* h = db.CreateHierarchy("d").value();
  NodeId a = h->AddClass("a").value();
  NodeId b = h->AddClass("b", a).value();
  NodeId c = h->AddClass("c", b).value();
  HierarchicalRelation* r = db.CreateRelation("r", {{"v", "d"}}).value();
  ASSERT_TRUE(r->Insert({a}, Truth::kPositive).ok());
  ASSERT_TRUE(r->Insert({b}, Truth::kPositive).ok());
  ASSERT_TRUE(r->Insert({c}, Truth::kPositive).ok());
  EXPECT_EQ(ConsolidateInPlace(*r).value(), 2u);
  EXPECT_EQ(r->size(), 1u);
  EXPECT_TRUE(r->FindItem({a}).has_value());
}

TEST(ConsolidateTest, Idempotent) {
  RespectsFixture f;
  ASSERT_TRUE(ConsolidateInPlace(*f.respects).ok());
  size_t size_after_first = f.respects->size();
  EXPECT_EQ(ConsolidateInPlace(*f.respects).value(), 0u);
  EXPECT_EQ(f.respects->size(), size_after_first);
}

TEST(ConsolidateTest, FunctionalFormLeavesArgumentUntouched) {
  RespectsFixture f;
  HierarchicalRelation consolidated = Consolidated(*f.respects).value();
  EXPECT_EQ(f.respects->size(), 3u);
  EXPECT_EQ(consolidated.size(), 1u);
}

TEST(ConsolidateTest, IsRedundantProbesSingleTuples) {
  FlyingFixture f;
  std::optional<TupleId> peter = f.flies->FindItem({f.peter});
  std::optional<TupleId> penguin = f.flies->FindItem({f.penguin});
  ASSERT_TRUE(peter.has_value() && penguin.has_value());
  EXPECT_TRUE(IsRedundant(*f.flies, *peter).value());
  EXPECT_FALSE(IsRedundant(*f.flies, *penguin).value());
  ASSERT_TRUE(f.flies->Erase(*peter).ok());
  EXPECT_TRUE(IsRedundant(*f.flies, *peter).status().IsNotFound());
}

TEST(ConsolidateTest, UnionCoverIsNotEliminated) {
  // Fig. 5: C subset of A union B, with neither A nor B dominating C.
  // "we cannot consider a tuple regarding C a redundant assertion, given
  // tuples regarding sets A and B."
  Database db;
  Hierarchy* h = db.CreateHierarchy("d").value();
  NodeId a = h->AddClass("a").value();
  NodeId b = h->AddClass("b").value();
  NodeId c = h->AddClass("c").value();
  // c's members are split between a and b.
  NodeId ca = h->AddClass("ca", c).value();
  NodeId cb = h->AddClass("cb", c).value();
  ASSERT_TRUE(h->AddEdge(a, ca).ok());
  ASSERT_TRUE(h->AddEdge(b, cb).ok());
  HierarchicalRelation* r = db.CreateRelation("r", {{"v", "d"}}).value();
  ASSERT_TRUE(r->Insert({a}, Truth::kPositive).ok());
  ASSERT_TRUE(r->Insert({b}, Truth::kPositive).ok());
  ASSERT_TRUE(r->Insert({c}, Truth::kPositive).ok());
  // c is incomparable with both a and b, so it is not redundant even
  // though ext(c) is covered by ext(a) union ext(b).
  EXPECT_EQ(ConsolidateInPlace(*r).value(), 0u);
  EXPECT_EQ(r->size(), 3u);
}

TEST(ConsolidateTest, PartitionedSubsetKeptConservatively) {
  // Section 3.2's final case: C partitioned into A and B with tuples tA
  // and tB: tC is "always overridden" yet still not considered redundant.
  Database db;
  Hierarchy* h = db.CreateHierarchy("d").value();
  NodeId c = h->AddClass("c").value();
  NodeId a = h->AddClass("a", c).value();
  NodeId b = h->AddClass("b", c).value();
  (void)h->AddInstance(Value::String("x"), a).value();
  (void)h->AddInstance(Value::String("y"), b).value();
  HierarchicalRelation* r = db.CreateRelation("r", {{"v", "d"}}).value();
  ASSERT_TRUE(r->Insert({a}, Truth::kNegative).ok());
  ASSERT_TRUE(r->Insert({b}, Truth::kNegative).ok());
  ASSERT_TRUE(r->Insert({c}, Truth::kPositive).ok());
  EXPECT_EQ(ConsolidateInPlace(*r).value(), 0u);
  EXPECT_EQ(r->size(), 3u);
}

TEST(ConsolidateTest, ExtensionPreservedOnRandomDatabases) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    testing::RandomFixtureOptions options;
    options.num_tuples = 10;
    testing::RandomDatabase rdb(seed, options);
    std::vector<Item> before = Extension(*rdb.relation()).value();
    ASSERT_TRUE(ConsolidateInPlace(*rdb.relation()).ok()) << "seed " << seed;
    std::vector<Item> after = Extension(*rdb.relation()).value();
    EXPECT_EQ(before, after) << "seed " << seed;
    // Idempotence.
    EXPECT_EQ(ConsolidateInPlace(*rdb.relation()).value(), 0u)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace hirel

#include "graph/dag.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace hirel {
namespace {

// Builds a small diamond: 0 -> {1, 2} -> 3.
Dag Diamond() {
  Dag d;
  NodeId a = d.AddNode(), b = d.AddNode(), c = d.AddNode(), e = d.AddNode();
  EXPECT_TRUE(d.AddEdge(a, b).ok());
  EXPECT_TRUE(d.AddEdge(a, c).ok());
  EXPECT_TRUE(d.AddEdge(b, e).ok());
  EXPECT_TRUE(d.AddEdge(c, e).ok());
  return d;
}

TEST(DagTest, AddNodesAndEdges) {
  Dag d = Diamond();
  EXPECT_EQ(d.num_nodes(), 4u);
  EXPECT_EQ(d.num_edges(), 4u);
  EXPECT_TRUE(d.HasEdge(0, 1));
  EXPECT_FALSE(d.HasEdge(1, 0));
}

TEST(DagTest, RejectsDuplicateEdge) {
  Dag d = Diamond();
  EXPECT_TRUE(d.AddEdge(0, 1).IsAlreadyExists());
}

TEST(DagTest, RejectsCycles) {
  Dag d = Diamond();
  EXPECT_TRUE(d.AddEdge(3, 0).IsIntegrityViolation());
  EXPECT_TRUE(d.AddEdge(1, 1).IsIntegrityViolation());
  // Graph unchanged.
  EXPECT_EQ(d.num_edges(), 4u);
}

TEST(DagTest, RejectsEdgeOnDeadNode) {
  Dag d = Diamond();
  ASSERT_TRUE(d.RemoveNode(3).ok());
  EXPECT_TRUE(d.AddEdge(1, 3).IsInvalidArgument());
}

TEST(DagTest, Reachability) {
  Dag d = Diamond();
  EXPECT_TRUE(d.Reachable(0, 3));
  EXPECT_TRUE(d.Reachable(0, 0));
  EXPECT_TRUE(d.Reachable(1, 3));
  EXPECT_FALSE(d.Reachable(3, 0));
  EXPECT_FALSE(d.Reachable(1, 2));
}

TEST(DagTest, TopologicalOrderRespectsEdges) {
  Dag d = Diamond();
  std::vector<NodeId> order = d.TopologicalOrder();
  ASSERT_EQ(order.size(), 4u);
  std::vector<size_t> pos(4);
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(DagTest, DescendantsAndAncestors) {
  Dag d = Diamond();
  std::vector<NodeId> desc = d.Descendants(0);
  std::sort(desc.begin(), desc.end());
  EXPECT_EQ(desc, (std::vector<NodeId>{0, 1, 2, 3}));
  std::vector<NodeId> anc = d.Ancestors(3);
  std::sort(anc.begin(), anc.end());
  EXPECT_EQ(anc, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(d.Descendants(1), (std::vector<NodeId>{1, 3}));
}

TEST(DagTest, RootsAndLeaves) {
  Dag d = Diamond();
  EXPECT_EQ(d.Roots(), (std::vector<NodeId>{0}));
  EXPECT_EQ(d.Leaves(), (std::vector<NodeId>{3}));
}

TEST(DagTest, RemoveEdge) {
  Dag d = Diamond();
  EXPECT_TRUE(d.RemoveEdge(1, 3).ok());
  EXPECT_FALSE(d.HasEdge(1, 3));
  EXPECT_TRUE(d.Reachable(0, 3));  // still via 2
  EXPECT_TRUE(d.RemoveEdge(1, 3).IsNotFound());
}

TEST(DagTest, RemoveNodeDetaches) {
  Dag d = Diamond();
  EXPECT_TRUE(d.RemoveNode(2).ok());
  EXPECT_FALSE(d.alive(2));
  EXPECT_EQ(d.num_nodes(), 3u);
  EXPECT_EQ(d.num_edges(), 2u);
  EXPECT_TRUE(d.Reachable(0, 3));  // via 1
}

TEST(DagTest, AddEdgeReducedSkipsRedundant) {
  Dag d;
  NodeId a = d.AddNode(), b = d.AddNode(), c = d.AddNode();
  ASSERT_TRUE(d.AddEdgeReduced(a, b).ok());
  ASSERT_TRUE(d.AddEdgeReduced(b, c).ok());
  bool inserted = true;
  ASSERT_TRUE(d.AddEdgeReduced(a, c, &inserted).ok());
  EXPECT_FALSE(inserted);
  EXPECT_FALSE(d.HasEdge(a, c));
  EXPECT_FALSE(d.HasRedundantEdge());
}

TEST(DagTest, AddEdgeReducedDropsNewlyRedundantEdges) {
  Dag d;
  NodeId a = d.AddNode(), b = d.AddNode(), c = d.AddNode();
  // a -> c directly, then inserting a -> b with b -> c makes a -> c
  // redundant.
  ASSERT_TRUE(d.AddEdgeReduced(a, c).ok());
  ASSERT_TRUE(d.AddEdgeReduced(b, c).ok());
  bool inserted = false;
  ASSERT_TRUE(d.AddEdgeReduced(a, b, &inserted).ok());
  EXPECT_TRUE(inserted);
  EXPECT_FALSE(d.HasEdge(a, c));
  EXPECT_TRUE(d.Reachable(a, c));
  EXPECT_FALSE(d.HasRedundantEdge());
}

TEST(DagTest, AddEdgeReducedStillRejectsCycles) {
  Dag d;
  NodeId a = d.AddNode(), b = d.AddNode();
  ASSERT_TRUE(d.AddEdgeReduced(a, b).ok());
  EXPECT_TRUE(d.AddEdgeReduced(b, a).IsIntegrityViolation());
}

// The paper's node elimination: eliminating a node preserves reachability
// among the remaining nodes without introducing redundant edges.
TEST(DagTest, EliminateNodePreservesReachability) {
  Dag d;
  // chain a -> x -> b plus a -> c.
  NodeId a = d.AddNode(), x = d.AddNode(), b = d.AddNode(), c = d.AddNode();
  ASSERT_TRUE(d.AddEdge(a, x).ok());
  ASSERT_TRUE(d.AddEdge(x, b).ok());
  ASSERT_TRUE(d.AddEdge(a, c).ok());
  ASSERT_TRUE(d.EliminateNode(x).ok());
  EXPECT_TRUE(d.Reachable(a, b));
  EXPECT_TRUE(d.HasEdge(a, b));
  EXPECT_FALSE(d.HasRedundantEdge());
}

TEST(DagTest, EliminateNodeAvoidsRedundantEdges) {
  Dag d;
  // a -> x -> b and a -> b already: eliminating x must not duplicate a->b.
  NodeId a = d.AddNode(), x = d.AddNode(), b = d.AddNode();
  ASSERT_TRUE(d.AddEdge(a, x).ok());
  ASSERT_TRUE(d.AddEdge(x, b).ok());
  ASSERT_TRUE(d.AddEdge(a, b).ok());
  ASSERT_TRUE(d.EliminateNode(x).ok());
  EXPECT_EQ(d.num_edges(), 1u);
  EXPECT_TRUE(d.HasEdge(a, b));
}

TEST(DagTest, EliminateNodeKeepRedundantMode) {
  Dag d;
  // Fig. 1 Patricia discussion: keeping redundant edges is what on-path
  // preemption requires. a -> x -> b, a -> m -> b; eliminate x keeping
  // redundancy: edge a -> b appears even though a path exists via m.
  NodeId a = d.AddNode(), x = d.AddNode(), m = d.AddNode(), b = d.AddNode();
  ASSERT_TRUE(d.AddEdge(a, x).ok());
  ASSERT_TRUE(d.AddEdge(x, b).ok());
  ASSERT_TRUE(d.AddEdge(a, m).ok());
  ASSERT_TRUE(d.AddEdge(m, b).ok());
  ASSERT_TRUE(d.EliminateNode(x, /*keep_redundant_edges=*/true).ok());
  EXPECT_TRUE(d.HasEdge(a, b));
  EXPECT_TRUE(d.HasRedundantEdge());
}

// Property: on random DAGs, elimination preserves the reachability relation
// restricted to surviving nodes, and (in reduced mode) keeps the graph
// redundancy-free.
class DagEliminationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DagEliminationProperty, PreservesRestrictedReachability) {
  Random rng(GetParam());
  Dag d;
  constexpr size_t kNodes = 12;
  for (size_t i = 0; i < kNodes; ++i) d.AddNode();
  for (size_t u = 0; u < kNodes; ++u) {
    for (size_t v = u + 1; v < kNodes; ++v) {
      if (rng.Bernoulli(0.25)) {
        (void)d.AddEdgeReduced(static_cast<NodeId>(u),
                               static_cast<NodeId>(v));
      }
    }
  }
  // Record reachability.
  bool before[kNodes][kNodes];
  for (size_t u = 0; u < kNodes; ++u) {
    for (size_t v = 0; v < kNodes; ++v) {
      before[u][v] = d.Reachable(static_cast<NodeId>(u),
                                 static_cast<NodeId>(v));
    }
  }
  NodeId victim = static_cast<NodeId>(rng.Uniform(kNodes));
  ASSERT_TRUE(d.EliminateNode(victim).ok());
  for (size_t u = 0; u < kNodes; ++u) {
    if (u == victim) continue;
    for (size_t v = 0; v < kNodes; ++v) {
      if (v == victim) continue;
      EXPECT_EQ(d.Reachable(static_cast<NodeId>(u), static_cast<NodeId>(v)),
                before[u][v])
          << "reachability " << u << " -> " << v << " changed";
    }
  }
  EXPECT_FALSE(d.HasRedundantEdge());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagEliminationProperty,
                         ::testing::Range<uint64_t>(0, 25));

// Above the closure-cache node limit, reachability switches to the
// spanning-forest interval fast path (complete on single-parent graphs)
// with a BFS fallback for multi-parent nodes.
TEST(DagTest, LargeChainUsesIntervalFastPath) {
  Dag d;
  constexpr size_t kNodes = 9000;  // beyond the closure limit
  for (size_t i = 0; i < kNodes; ++i) d.AddNode();
  for (size_t i = 0; i + 1 < kNodes; ++i) {
    ASSERT_TRUE(
        d.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1)).ok());
  }
  EXPECT_TRUE(d.Reachable(0, kNodes - 1));
  EXPECT_TRUE(d.Reachable(100, 8000));
  EXPECT_FALSE(d.Reachable(8000, 100));
  EXPECT_FALSE(d.Reachable(kNodes - 1, 0));
}

TEST(DagTest, LargeGraphMultiParentFallbackIsCorrect) {
  Dag d;
  constexpr size_t kNodes = 9000;
  for (size_t i = 0; i < kNodes; ++i) d.AddNode();
  // Two long chains from two roots...
  for (size_t i = 0; i + 1 < 4000; ++i) {
    ASSERT_TRUE(
        d.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1)).ok());
  }
  for (size_t i = 4000; i + 1 < 8000; ++i) {
    ASSERT_TRUE(
        d.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1)).ok());
  }
  // ...meeting at a shared multi-parent node.
  NodeId join = 8500;
  ASSERT_TRUE(d.AddEdge(3999, join).ok());
  ASSERT_TRUE(d.AddEdge(7999, join).ok());
  EXPECT_TRUE(d.Reachable(0, join));     // via first-parent tree
  EXPECT_TRUE(d.Reachable(4000, join));  // needs the BFS fallback
  EXPECT_TRUE(d.Reachable(7000, join));
  EXPECT_FALSE(d.Reachable(join, 0));
  EXPECT_FALSE(d.Reachable(8600, join));  // isolated node
  // Mutation invalidates the interval index.
  ASSERT_TRUE(d.RemoveEdge(3999, join).ok());
  EXPECT_FALSE(d.Reachable(0, join));
  EXPECT_TRUE(d.Reachable(4000, join));
}

TEST(DagTest, ClosureRowMatchesReachability) {
  Dag d = Diamond();
  const DynamicBitset& row = d.ClosureRow(0);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(row.Test(v), d.Reachable(0, v));
  }
}

TEST(DagTest, ClosureInvalidatedByMutation) {
  Dag d = Diamond();
  EXPECT_TRUE(d.Reachable(0, 3));
  ASSERT_TRUE(d.RemoveEdge(1, 3).ok());
  ASSERT_TRUE(d.RemoveEdge(2, 3).ok());
  EXPECT_FALSE(d.Reachable(0, 3));
}

TEST(DagTest, SetClosureNodeLimitSwitchesToBfsFallback) {
  Dag d = Diamond();
  EXPECT_TRUE(d.reachability()->closure_backed());

  // Record every answer from the closure-backed snapshot.
  bool closure_answers[4][4];
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) closure_answers[u][v] = d.Reachable(u, v);
  }

  // Dropping the limit below the node count forces the interval snapshot.
  // The diamond's node 3 has two parents, so only one (the first parent)
  // carries it in the spanning forest: Reachable(2, 3) is exactly the
  // query the intervals cannot decide and the BFS fallback must answer.
  d.SetClosureNodeLimit(2);
  EXPECT_EQ(d.closure_node_limit(), 2u);
  std::shared_ptr<const ReachabilitySnapshot> snap = d.reachability();
  EXPECT_FALSE(snap->closure_backed());
  EXPECT_FALSE(snap->complete());  // multi-parent: BFS fallback in play
  EXPECT_EQ(snap->Query(2, 3), ReachabilitySnapshot::Answer::kUnknown);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      EXPECT_EQ(d.Reachable(u, v), closure_answers[u][v])
          << "u=" << u << " v=" << v;
    }
  }

  // A pinned snapshot stays valid and consistent across later mutations.
  ASSERT_TRUE(d.RemoveEdge(1, 3).ok());
  ASSERT_TRUE(d.RemoveEdge(2, 3).ok());
  EXPECT_FALSE(d.Reachable(0, 3));
  EXPECT_EQ(snap->Query(1, 3), ReachabilitySnapshot::Answer::kYes);

  // Restoring a generous limit brings the closure representation back.
  d.SetClosureNodeLimit(Dag::kDefaultClosureNodeLimit);
  EXPECT_TRUE(d.reachability()->closure_backed());
}

}  // namespace
}  // namespace hirel

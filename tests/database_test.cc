#include "catalog/database.h"

#include <gtest/gtest.h>

#include "algebra/setops.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

TEST(DatabaseTest, CreateAndGetHierarchy) {
  Database db;
  Hierarchy* h = db.CreateHierarchy("animal").value();
  EXPECT_EQ(h->name(), "animal");
  EXPECT_EQ(db.GetHierarchy("animal").value(), h);
  EXPECT_TRUE(db.GetHierarchy("plant").status().IsNotFound());
  EXPECT_TRUE(db.CreateHierarchy("animal").status().IsAlreadyExists());
  EXPECT_TRUE(db.CreateHierarchy("").status().IsInvalidArgument());
}

TEST(DatabaseTest, CreateRelationBindsHierarchies) {
  Database db;
  db.CreateHierarchy("animal").value();
  db.CreateHierarchy("color").value();
  HierarchicalRelation* r =
      db.CreateRelation("c", {{"a", "animal"}, {"b", "color"}}).value();
  EXPECT_EQ(r->schema().size(), 2u);
  EXPECT_EQ(r->schema().hierarchy(0), db.GetHierarchy("animal").value());
  EXPECT_TRUE(db.CreateRelation("c", {}).status().IsAlreadyExists());
  EXPECT_TRUE(
      db.CreateRelation("d", {{"a", "nope"}}).status().IsNotFound());
}

TEST(DatabaseTest, DropHierarchyGuardedByReferences) {
  Database db;
  db.CreateHierarchy("animal").value();
  db.CreateRelation("r", {{"a", "animal"}}).value();
  EXPECT_TRUE(db.DropHierarchy("animal").IsIntegrityViolation());
  ASSERT_TRUE(db.DropRelation("r").ok());
  EXPECT_TRUE(db.DropHierarchy("animal").ok());
  EXPECT_TRUE(db.DropHierarchy("animal").IsNotFound());
}

TEST(DatabaseTest, NamesAreSorted) {
  Database db;
  db.CreateHierarchy("zebra").value();
  db.CreateHierarchy("ant").value();
  db.CreateRelation("r2", {}).value();
  db.CreateRelation("r1", {}).value();
  EXPECT_EQ(db.HierarchyNames(),
            (std::vector<std::string>{"ant", "zebra"}));
  EXPECT_EQ(db.RelationNames(), (std::vector<std::string>{"r1", "r2"}));
}

TEST(DatabaseTest, AdoptRelationFromOperator) {
  testing::LovesFixture f;
  HierarchicalRelation both = Intersect(*f.jill, *f.jack).value();
  both.set_name("both_love");
  HierarchicalRelation* adopted =
      f.base.db.AdoptRelation(std::move(both)).value();
  EXPECT_EQ(f.base.db.GetRelation("both_love").value(), adopted);
}

TEST(DatabaseTest, AdoptRejectsForeignHierarchies) {
  testing::LovesFixture f;
  Database other;
  Hierarchy* h = other.CreateHierarchy("x").value();
  Schema schema;
  ASSERT_TRUE(schema.Append("v", h).ok());
  HierarchicalRelation foreign("foreign", schema);
  EXPECT_TRUE(f.base.db.AdoptRelation(std::move(foreign))
                  .status()
                  .IsInvalidArgument());
}

TEST(DatabaseTest, AdoptRejectsDuplicateName) {
  testing::LovesFixture f;
  HierarchicalRelation dup("jill_loves", f.jill->schema());
  EXPECT_TRUE(
      f.base.db.AdoptRelation(std::move(dup)).status().IsAlreadyExists());
}

TEST(DatabaseTest, ConstAccessors) {
  Database db;
  db.CreateHierarchy("animal").value();
  db.CreateRelation("r", {{"a", "animal"}}).value();
  const Database& cdb = db;
  EXPECT_TRUE(cdb.GetHierarchy("animal").ok());
  EXPECT_TRUE(cdb.GetRelation("r").ok());
  EXPECT_TRUE(cdb.GetRelation("zzz").status().IsNotFound());
}


TEST(DatabaseTest, EliminateNodeGuardedByTupleReferences) {
  testing::FlyingFixture f;
  // galapagos_penguin carries no tuple: elimination reconnects patricia
  // and paul under penguin.
  ASSERT_TRUE(f.db.EliminateNode("animal", f.galapagos).ok());
  EXPECT_TRUE(f.animal->FindClass("galapagos_penguin").status().IsNotFound());
  EXPECT_TRUE(f.animal->Subsumes(f.penguin, f.paul));
  // penguin is referenced by the -ALL penguin tuple: refused.
  EXPECT_TRUE(
      f.db.EliminateNode("animal", f.penguin).IsIntegrityViolation());
  // Unknown hierarchy / dead node.
  EXPECT_TRUE(f.db.EliminateNode("plants", f.penguin).IsNotFound());
  EXPECT_TRUE(f.db.EliminateNode("animal", f.galapagos).IsNotFound());
  // Retract the tuple; elimination then proceeds and inference falls back
  // to the bird default for the former penguins.
  ASSERT_TRUE(f.flies->EraseItem({f.penguin}).ok());
  ASSERT_TRUE(f.db.EliminateNode("animal", f.penguin).ok());
}

}  // namespace
}  // namespace hirel

#include "hql/executor.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/inference.h"

namespace hirel {
namespace hql {
namespace {

constexpr const char* kFlyingScript = R"(
CREATE HIERARCHY animal;
CREATE CLASS bird IN animal;
CREATE CLASS canary IN animal UNDER bird;
CREATE CLASS penguin IN animal UNDER bird;
CREATE CLASS galapagos IN animal UNDER penguin;
CREATE CLASS afp IN animal UNDER penguin;
CREATE INSTANCE tweety IN animal UNDER canary;
CREATE INSTANCE paul IN animal UNDER galapagos;
CREATE INSTANCE pamela IN animal UNDER afp;
CREATE INSTANCE patricia IN animal UNDER afp, galapagos;
CREATE INSTANCE peter IN animal UNDER afp;
CREATE RELATION flies (who: animal);
ASSERT flies(ALL bird);
DENY flies(ALL penguin);
ASSERT flies(ALL afp);
ASSERT flies(peter);
)";

TEST(ExecutorTest, BuildsFlyingDatabase) {
  Executor exec;
  Result<std::string> out = exec.Execute(kFlyingScript);
  ASSERT_TRUE(out.ok()) << out.status();
  Database& db = exec.database();
  Hierarchy* animal = db.GetHierarchy("animal").value();
  EXPECT_EQ(animal->num_instances(), 5u);
  HierarchicalRelation* flies = db.GetRelation("flies").value();
  EXPECT_EQ(flies->size(), 4u);

  NodeId paul = animal->FindInstance(Value::String("paul")).value();
  NodeId patricia = animal->FindInstance(Value::String("patricia")).value();
  EXPECT_EQ(InferTruth(*flies, {paul}).value(), Truth::kNegative);
  EXPECT_EQ(InferTruth(*flies, {patricia}).value(), Truth::kPositive);
}

TEST(ExecutorTest, SelectWithWhereRendersTable) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  std::string out =
      exec.Execute("SELECT * FROM flies WHERE who = penguin;").value();
  // After the executor's consolidation only the informative tuple remains:
  // among penguins, exactly the amazing flying penguins fly (peter's tuple
  // is redundant under it).
  EXPECT_NE(out.find("ALL afp"), std::string::npos);
  EXPECT_EQ(out.find("peter"), std::string::npos);
  EXPECT_EQ(out.find("paul"), std::string::npos);
}

TEST(ExecutorTest, ExplainShowsBinders) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  std::string out = exec.Execute("EXPLAIN flies(paul);").value();
  EXPECT_NE(out.find("binds> - (penguin)"), std::string::npos);
}

TEST(ExecutorTest, ExtensionAndExplicate) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  std::string ext = exec.Execute("EXTENSION flies;").value();
  EXPECT_NE(ext.find("tweety"), std::string::npos);
  EXPECT_EQ(ext.find("paul"), std::string::npos);
  std::string expl = exec.Execute("EXPLICATE flies ON (who);").value();
  EXPECT_NE(expl.find("paul"), std::string::npos);  // negative rows kept
}

TEST(ExecutorTest, GuardedAssertRejectsConflict) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(R"(
    CREATE HIERARCHY student;
    CREATE CLASS obsequious IN student;
    CREATE HIERARCHY teacher;
    CREATE CLASS incoherent IN teacher;
    CREATE INSTANCE john IN student UNDER obsequious;
    CREATE INSTANCE jim IN teacher UNDER incoherent;
    CREATE RELATION respects (who: student, whom: teacher);
    ASSERT respects(ALL obsequious, ALL teacher);
  )").ok());
  // The Fig. 3 conflict: denied without the resolver in place.
  Result<std::string> bad =
      exec.Execute("DENY respects(ALL student, ALL incoherent);");
  ASSERT_TRUE(bad.status().IsConflict());
  // With the resolver first, it goes through.
  ASSERT_TRUE(
      exec.Execute("ASSERT respects(ALL obsequious, ALL incoherent);").ok());
  EXPECT_TRUE(
      exec.Execute("DENY respects(ALL student, ALL incoherent);").ok());
}

TEST(ExecutorTest, ConsolidateReportsRemovals) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  std::string out = exec.Execute("CONSOLIDATE flies;").value();
  EXPECT_NE(out.find("removed 1 redundant tuple"), std::string::npos);
}

TEST(ExecutorTest, DerivedRelationsViaCreateAs) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_TRUE(exec.Execute(R"(
    CREATE RELATION jill (who: animal);
    ASSERT jill(ALL bird);
    DENY jill(ALL penguin);
    CREATE RELATION both AS flies INTERSECT jill;
  )").ok());
  std::string out = exec.Execute("EXTENSION both;").value();
  EXPECT_NE(out.find("tweety"), std::string::npos);
  EXPECT_EQ(out.find("peter"), std::string::npos);
}

TEST(ExecutorTest, ProjectViaCreateAs) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(R"(
    CREATE HIERARCHY animal;
    CREATE HIERARCHY color;
    CREATE CLASS elephant IN animal;
    CREATE INSTANCE clyde IN animal UNDER elephant;
    CREATE RELATION color_of (beast: animal, shade: color);
    ASSERT color_of(ALL elephant, 'grey');
    CREATE RELATION beasts AS PROJECT color_of ON (beast);
  )").ok());
  std::string out = exec.Execute("SHOW RELATION beasts;").value();
  EXPECT_NE(out.find("ALL elephant"), std::string::npos);
}

TEST(ExecutorTest, LiteralInterningOnAssertOnly) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(R"(
    CREATE HIERARCHY sz;
    CREATE HIERARCHY animal;
    CREATE CLASS elephant IN animal;
    CREATE RELATION enclosure (beast: animal, sqft: sz);
    ASSERT enclosure(ALL elephant, 3000);
  )").ok());
  // 3000 was interned.
  Hierarchy* sz = exec.database().GetHierarchy("sz").value();
  EXPECT_TRUE(sz->FindInstance(Value::Int(3000)).ok());
  // Queries do not intern: unknown literal is an error.
  EXPECT_TRUE(exec.Execute("SELECT * FROM enclosure WHERE sqft = 4000;")
                  .status()
                  .IsNotFound());
}

TEST(ExecutorTest, RetractAndShow) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_TRUE(exec.Execute("RETRACT flies(peter);").ok());
  EXPECT_EQ(exec.database().GetRelation("flies").value()->size(), 3u);
  std::string out = exec.Execute("SHOW RELATIONS;").value();
  EXPECT_NE(out.find("flies"), std::string::npos);
  std::string h = exec.Execute("SHOW HIERARCHY animal;").value();
  EXPECT_NE(h.find("penguin"), std::string::npos);
  EXPECT_NE(h.find("* patricia"), std::string::npos);
}

TEST(ExecutorTest, ConnectAndPrefer) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(R"(
    CREATE HIERARCHY d;
    CREATE CLASS a IN d;
    CREATE CLASS b IN d;
    CREATE INSTANCE x IN d UNDER a;
    CONNECT b TO x IN d;
    CREATE RELATION r (v: d);
  )").ok());
  Hierarchy* h = exec.database().GetHierarchy("d").value();
  NodeId a = h->FindClass("a").value();
  NodeId b = h->FindClass("b").value();
  NodeId x = h->FindInstance(Value::String("x")).value();
  EXPECT_TRUE(h->Subsumes(b, x));
  ASSERT_TRUE(exec.Execute("PREFER b OVER a IN d;").ok());
  EXPECT_TRUE(h->BindsBelow(a, b));
}

TEST(ExecutorTest, SaveAndLoadRoundTrip) {
  std::string path = std::string(::testing::TempDir()) + "/hql_db.hirel";
  {
    Executor exec;
    ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
    ASSERT_TRUE(exec.Execute("SAVE '" + path + "';").ok());
  }
  Executor fresh;
  ASSERT_TRUE(fresh.Execute("LOAD '" + path + "';").ok());
  EXPECT_TRUE(fresh.database().GetRelation("flies").ok());
  std::remove(path.c_str());
}

TEST(ExecutorTest, HelpAndErrors) {
  Executor exec;
  std::string help = exec.Execute("HELP;").value();
  EXPECT_NE(help.find("CONSOLIDATE"), std::string::npos);
  EXPECT_TRUE(exec.Execute("SHOW RELATION nope;").status().IsNotFound());
  EXPECT_TRUE(exec.Execute("garbage;").status().IsParseError());
  EXPECT_TRUE(exec.Execute("ASSERT nothing(x);").status().IsNotFound());
}

TEST(ExecutorTest, DropStatements) {
  Executor exec;
  ASSERT_TRUE(exec.Execute("CREATE HIERARCHY d; CREATE RELATION r (v: d);")
                  .ok());
  EXPECT_TRUE(exec.Execute("DROP HIERARCHY d;").status()
                  .IsIntegrityViolation());
  ASSERT_TRUE(exec.Execute("DROP RELATION r; DROP HIERARCHY d;").ok());
  EXPECT_TRUE(exec.database().HierarchyNames().empty());
}

}  // namespace
}  // namespace hql
}  // namespace hirel

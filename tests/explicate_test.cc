#include "core/explicate.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/inference.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::ElephantFixture;
using testing::FlyingFixture;
using testing::RespectsFixture;

TEST(ExplicateTest, FullExplicationOfFlies) {
  FlyingFixture f;
  HierarchicalRelation flat = Explicate(*f.flies).value();
  // Extension: tweety, pamela, patricia, peter (paul is cancelled).
  std::vector<Item> items;
  for (TupleId id : flat.TupleIds()) {
    EXPECT_EQ(flat.tuple(id).truth, Truth::kPositive);
    EXPECT_TRUE(ItemIsAtomic(flat.schema(), flat.tuple(id).item));
    items.push_back(flat.tuple(id).item);
  }
  std::sort(items.begin(), items.end());
  std::vector<Item> expected{
      {f.tweety}, {f.pamela}, {f.patricia}, {f.peter}};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(items, expected);
}

TEST(ExplicateTest, KeepNegativesWhenRequested) {
  FlyingFixture f;
  ExplicateOptions options;
  options.consolidate_after = false;
  HierarchicalRelation flat = Explicate(*f.flies, {}, options).value();
  // All five instances appear, paul negatively.
  EXPECT_EQ(flat.size(), 5u);
  EXPECT_EQ(flat.TruthAt({f.paul}), Truth::kNegative);
  EXPECT_EQ(flat.TruthAt({f.tweety}), Truth::kPositive);
}

TEST(ExplicateTest, MatchesInferenceOnEveryAtom) {
  FlyingFixture f;
  HierarchicalRelation flat = Explicate(*f.flies).value();
  for (NodeId atom : f.animal->Instances()) {
    bool in_flat = flat.FindItem({atom}).has_value();
    EXPECT_EQ(in_flat, Holds(*f.flies, {atom}).value())
        << f.animal->NodeName(atom);
  }
}

TEST(ExplicateTest, PartialExplicationKeepsOtherAttributesHierarchical) {
  ElephantFixture f;
  // Explicate only the animal attribute of color_of.
  size_t animal_attr = f.colors->schema().IndexOf("animal").value();
  HierarchicalRelation partial =
      Explicate(*f.colors, {animal_attr}).value();
  for (TupleId id : partial.TupleIds()) {
    const HTuple& t = partial.tuple(id);
    EXPECT_TRUE(f.animal->is_instance(t.item[0]));
  }
  // Negated tuples are NOT redundant in a partial explication and stay.
  bool has_negative = false;
  for (TupleId id : partial.TupleIds()) {
    if (partial.tuple(id).truth == Truth::kNegative) has_negative = true;
  }
  EXPECT_TRUE(has_negative);
  // Clyde's rows: dappled+ and white-/grey- (via explicit tuples).
  EXPECT_EQ(partial.TruthAt({f.clyde, f.dappled}), Truth::kPositive);
  EXPECT_EQ(partial.TruthAt({f.clyde, f.white}), Truth::kNegative);
}

TEST(ExplicateTest, ExtensionOfColors) {
  ElephantFixture f;
  std::vector<Item> extension = Extension(*f.colors).value();
  std::vector<Item> expected{{f.clyde, f.dappled}, {f.appu, f.white}};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(extension, expected);
}

TEST(ExplicateTest, EmptyClassDenotesNothing) {
  Database db;
  Hierarchy* h = db.CreateHierarchy("d").value();
  NodeId a = h->AddClass("a").value();
  HierarchicalRelation* r = db.CreateRelation("r", {{"v", "d"}}).value();
  ASSERT_TRUE(r->Insert({a}, Truth::kPositive).ok());
  HierarchicalRelation flat = Explicate(*r).value();
  EXPECT_TRUE(flat.empty());
  EXPECT_TRUE(Extension(*r).value().empty());
}

TEST(ExplicateTest, ResultSizeCapEnforced) {
  FlyingFixture f;
  ExplicateOptions options;
  options.max_result_tuples = 2;
  Result<HierarchicalRelation> r = Explicate(*f.flies, {}, options);
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST(ExplicateTest, InvalidAttributePosition) {
  FlyingFixture f;
  Result<HierarchicalRelation> r = Explicate(*f.flies, {7});
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ExplicateTest, MultiAttributeExtension) {
  RespectsFixture f;
  std::vector<Item> extension = Extension(*f.respects).value();
  // john (obsequious) respects everyone; mary respects nobody.
  std::vector<Item> expected{{f.john, f.jim}, {f.john, f.wendy}};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(extension, expected);
}

TEST(ExplicateTest, ExplicationIsIdempotentOnExtensions) {
  FlyingFixture f;
  HierarchicalRelation once = Explicate(*f.flies).value();
  HierarchicalRelation twice = Explicate(once).value();
  EXPECT_EQ(once.size(), twice.size());
  for (TupleId id : once.TupleIds()) {
    EXPECT_TRUE(twice.FindItem(once.tuple(id).item).has_value());
  }
}

TEST(ExplicateTest, ExtensionMatchesBruteForceOnRandomDatabases) {
  for (uint64_t seed = 100; seed < 125; ++seed) {
    testing::RandomDatabase rdb(seed, {});
    HierarchicalRelation* r = rdb.relation();
    std::vector<Item> extension = Extension(*r).value();
    // Brute force: infer every atom.
    std::vector<Item> brute;
    for (NodeId atom : rdb.hierarchy(0)->Instances()) {
      Result<bool> holds = Holds(*r, {atom});
      ASSERT_TRUE(holds.ok()) << "seed " << seed;
      if (*holds) brute.push_back({atom});
    }
    std::sort(brute.begin(), brute.end());
    EXPECT_EQ(extension, brute) << "seed " << seed;
  }
}

}  // namespace
}  // namespace hirel

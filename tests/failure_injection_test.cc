// Failure-injection tests: every fallible path must fail loudly with the
// right status code and leave state untouched (no partial effects).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/random.h"
#include "core/explicate.h"
#include "core/inference.h"
#include "core/integrity.h"
#include "hql/executor.h"
#include "io/snapshot.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::FlyingFixture;
using testing::RespectsFixture;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(FailureInjectionTest, CycleAttemptsLeaveHierarchyUntouched) {
  FlyingFixture f;
  size_t edges_before = f.animal->dag().num_edges();
  EXPECT_TRUE(f.animal->AddEdge(f.penguin, f.bird).IsIntegrityViolation());
  EXPECT_TRUE(f.animal->AddEdge(f.afp, f.bird).IsIntegrityViolation());
  EXPECT_EQ(f.animal->dag().num_edges(), edges_before);
}

TEST(FailureInjectionTest, RejectedGuardedInsertLeavesNoTrace) {
  RespectsFixture f(/*with_resolver=*/false);
  ASSERT_TRUE(
      f.respects->EraseItem({f.student->root(), f.incoherent}).ok());
  std::string before = f.respects->ToString();
  ASSERT_TRUE(GuardedInsert(*f.respects, {f.student->root(), f.incoherent},
                            Truth::kNegative)
                  .status()
                  .IsConflict());
  EXPECT_EQ(f.respects->ToString(), before);
}

TEST(FailureInjectionTest, SnapshotTrailingGarbageRejected) {
  FlyingFixture f;
  std::string data = SerializeDatabase(f.db).value();
  // Valid checksum over garbage-extended payload would differ; also test
  // payload-level trailing bytes by rebuilding the checksum by hand is
  // out of scope — a plain append must fail the checksum.
  std::string extended = data + "garbage";
  EXPECT_TRUE(DeserializeDatabase(extended).status().IsCorruption());
}

TEST(FailureInjectionTest, SnapshotEveryPrefixFailsCleanly) {
  // No prefix of a valid snapshot may crash or be accepted.
  FlyingFixture f;
  std::string data = SerializeDatabase(f.db).value();
  for (size_t len = 0; len < data.size(); len += 7) {
    Result<std::unique_ptr<Database>> r =
        DeserializeDatabase(data.substr(0, len));
    EXPECT_FALSE(r.ok()) << "prefix length " << len;
  }
}

TEST(FailureInjectionTest, SnapshotRandomByteCorruption) {
  FlyingFixture f;
  std::string data = SerializeDatabase(f.db).value();
  Random rng(99);
  for (int trial = 0; trial < 64; ++trial) {
    std::string corrupted = data;
    size_t pos = rng.Index(corrupted.size());
    corrupted[pos] =
        static_cast<char>(corrupted[pos] ^ (1 + rng.Index(255)));
    Result<std::unique_ptr<Database>> r = DeserializeDatabase(corrupted);
    // Either detected (usual) or — never — silently wrong: if it parses,
    // the checksum had to match, which a single-byte flip cannot achieve.
    EXPECT_FALSE(r.ok()) << "flip at " << pos;
  }
}

TEST(FailureInjectionTest, SaveToUnwritablePathFails) {
  FlyingFixture f;
  EXPECT_TRUE(
      SaveDatabase(f.db, "/nonexistent_dir/x.hirel").IsIoError());
}

TEST(FailureInjectionTest, LoadDirectoryFails) {
  Result<std::unique_ptr<Database>> r =
      LoadDatabase(std::string(::testing::TempDir()));
  EXPECT_FALSE(r.ok());
}

TEST(FailureInjectionTest, HqlScriptStopsAtFirstError) {
  hql::Executor exec;
  Result<std::string> out = exec.Execute(
      "CREATE HIERARCHY a;"
      "CREATE HIERARCHY a;"  // duplicate: fails here
      "CREATE HIERARCHY b;");
  EXPECT_TRUE(out.status().IsAlreadyExists());
  // The statement after the failure did not run.
  EXPECT_TRUE(exec.database().GetHierarchy("b").status().IsNotFound());
  // The statement before it did.
  EXPECT_TRUE(exec.database().GetHierarchy("a").ok());
}

TEST(FailureInjectionTest, HqlLoadCorruptFileKeepsCurrentDatabase) {
  std::string path = TempPath("corrupt.hirel");
  {
    std::ofstream out(path, std::ios::binary);
    out << "HIRELDB1 this is not a real snapshot";
  }
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute("CREATE HIERARCHY keepme;").ok());
  EXPECT_TRUE(exec.Execute("LOAD '" + path + "';").status().IsCorruption());
  EXPECT_TRUE(exec.database().GetHierarchy("keepme").ok());
  std::remove(path.c_str());
}

TEST(FailureInjectionTest, ExplicateCapDoesNotCorruptInput) {
  FlyingFixture f;
  ExplicateOptions options;
  options.max_result_tuples = 1;
  ASSERT_TRUE(Explicate(*f.flies, {}, options).status()
                  .IsResourceExhausted());
  EXPECT_EQ(f.flies->size(), 4u);
}

TEST(FailureInjectionTest, OnPathBlowupReportsResourceExhausted) {
  // A wide product interval: on-path search must cap out, not hang.
  Database db;
  Hierarchy* h = db.CreateHierarchy("wide").value();
  NodeId top = h->AddClass("top").value();
  // Two layers of 12 classes each, fully connected.
  std::vector<NodeId> layer1, layer2;
  for (int i = 0; i < 12; ++i) {
    layer1.push_back(
        h->AddClass("l1_" + std::to_string(i), top).value());
  }
  for (int i = 0; i < 12; ++i) {
    layer2.push_back(
        h->AddClass("l2_" + std::to_string(i), layer1[0]).value());
    for (int j = 1; j < 12; ++j) {
      ASSERT_TRUE(h->AddEdge(layer1[j], layer2.back()).ok());
    }
  }
  NodeId x = h->AddInstance(Value::String("x"), layer2[0]).value();
  for (int j = 1; j < 12; ++j) {
    ASSERT_TRUE(h->AddEdge(layer2[j], x).ok());
  }
  HierarchicalRelation* r = db.CreateRelation(
      "r", {{"a", "wide"}, {"b", "wide"}, {"c", "wide"}}).value();
  ASSERT_TRUE(r->Insert({top, top, top}, Truth::kPositive).ok());

  InferenceOptions options;
  options.preemption = PreemptionMode::kOnPath;
  options.on_path_search_limit = 100;
  Result<Truth> verdict = InferTruth(*r, {x, x, x}, options);
  EXPECT_TRUE(verdict.status().IsResourceExhausted());
}

}  // namespace
}  // namespace hirel

#include "flat/flat_relation.h"

#include <gtest/gtest.h>

#include "flat/flat_ops.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::FlyingFixture;

class FlatTest : public ::testing::Test {
 protected:
  FlatTest() : schema_(f_.flies->schema()), flat_("ext", schema_) {
    EXPECT_TRUE(flat_.Insert({f_.tweety}).ok());
    EXPECT_TRUE(flat_.Insert({f_.pamela}).ok());
    EXPECT_TRUE(flat_.Insert({f_.peter}).ok());
  }

  FlyingFixture f_;
  Schema schema_;
  FlatRelation flat_;
};

TEST_F(FlatTest, InsertIsSetSemantics) {
  EXPECT_EQ(flat_.size(), 3u);
  EXPECT_TRUE(flat_.Insert({f_.tweety}).ok());  // duplicate: no-op
  EXPECT_EQ(flat_.size(), 3u);
  EXPECT_TRUE(flat_.Contains({f_.tweety}));
  EXPECT_FALSE(flat_.Contains({f_.paul}));
}

TEST_F(FlatTest, RejectsClassValuedRows) {
  EXPECT_TRUE(flat_.Insert({f_.bird}).IsInvalidArgument());
  EXPECT_TRUE(flat_.Insert({f_.tweety, f_.peter}).IsInvalidArgument());
}

TEST_F(FlatTest, EraseRow) {
  EXPECT_TRUE(flat_.Erase({f_.tweety}).ok());
  EXPECT_FALSE(flat_.Contains({f_.tweety}));
  EXPECT_TRUE(flat_.Erase({f_.tweety}).IsNotFound());
}

TEST_F(FlatTest, RowsAreSorted) {
  std::vector<Item> rows = flat_.Rows();
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(FlatTest, SelectEqualsByClassMembership) {
  FlatRelation penguins = FlatSelectEquals(flat_, 0, f_.penguin).value();
  std::vector<Item> expected{{f_.pamela}, {f_.peter}};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(penguins.Rows(), expected);
}

TEST_F(FlatTest, SelectWherePredicate) {
  FlatRelation ps =
      FlatSelectWhere(flat_, 0,
                      [](const Value& v) { return v.AsString()[0] == 'p'; })
          .value();
  EXPECT_EQ(ps.size(), 2u);
}

TEST_F(FlatTest, SetOps) {
  FlatRelation other("other", schema_);
  ASSERT_TRUE(other.Insert({f_.peter}).ok());
  ASSERT_TRUE(other.Insert({f_.paul}).ok());

  EXPECT_EQ(FlatUnion(flat_, other).value().size(), 4u);
  EXPECT_EQ(FlatIntersect(flat_, other).value().Rows(),
            (std::vector<Item>{{f_.peter}}));
  EXPECT_EQ(FlatDifference(flat_, other).value().size(), 2u);
  EXPECT_EQ(FlatDifference(other, flat_).value().Rows(),
            (std::vector<Item>{{f_.paul}}));
}

TEST_F(FlatTest, SetOpsRejectIncompatibleSchemas) {
  Database db2;
  Hierarchy* h = db2.CreateHierarchy("x").value();
  Schema other_schema;
  ASSERT_TRUE(other_schema.Append("who", h).ok());
  FlatRelation other("o", other_schema);
  EXPECT_TRUE(FlatUnion(flat_, other).status().IsInvalidArgument());
}

TEST_F(FlatTest, ProjectAndJoin) {
  // Two-column flat relation: (animal, animal) pairs.
  Schema pair_schema;
  ASSERT_TRUE(pair_schema.Append("a", f_.animal).ok());
  ASSERT_TRUE(pair_schema.Append("b", f_.animal).ok());
  FlatRelation pairs("pairs", pair_schema);
  ASSERT_TRUE(pairs.Insert({f_.tweety, f_.peter}).ok());
  ASSERT_TRUE(pairs.Insert({f_.paul, f_.peter}).ok());

  FlatRelation firsts = FlatProject(pairs, {0}).value();
  EXPECT_EQ(firsts.size(), 2u);
  FlatRelation seconds = FlatProject(pairs, {1}).value();
  EXPECT_EQ(seconds.Rows(), (std::vector<Item>{{f_.peter}}));

  // Join pairs.b = flat_.who.
  FlatRelation joined = FlatJoinOn(pairs, flat_, {{1, 0}}).value();
  EXPECT_EQ(joined.size(), 2u);
  for (const Item& row : joined.Rows()) {
    EXPECT_EQ(row.size(), 2u);
    EXPECT_EQ(row[1], f_.peter);
  }
}

TEST_F(FlatTest, FromRowsValidates) {
  EXPECT_TRUE(FlatRelation::FromRows("x", schema_, {{f_.tweety}}).ok());
  EXPECT_TRUE(FlatRelation::FromRows("x", schema_, {{f_.bird}})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(FlatTest, ApproxBytesGrowsWithRows) {
  FlatRelation empty("e", schema_);
  EXPECT_EQ(empty.ApproxBytes(), 0u);
  EXPECT_GT(flat_.ApproxBytes(), 0u);
}

}  // namespace
}  // namespace hirel

#include "hierarchy/hierarchy.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace hirel {
namespace {

Value S(const char* s) { return Value::String(s); }

TEST(HierarchyTest, RootIsCreatedWithName) {
  Hierarchy h("animal");
  EXPECT_EQ(h.name(), "animal");
  EXPECT_TRUE(h.is_class(h.root()));
  EXPECT_EQ(h.NodeName(h.root()), "animal");
  EXPECT_EQ(h.num_classes(), 1u);
  EXPECT_EQ(h.FindClass("animal").value(), h.root());
}

TEST(HierarchyTest, AddClassUnderRootAndParent) {
  Hierarchy h("animal");
  NodeId bird = h.AddClass("bird").value();
  NodeId penguin = h.AddClass("penguin", bird).value();
  EXPECT_TRUE(h.Subsumes(h.root(), bird));
  EXPECT_TRUE(h.Subsumes(bird, penguin));
  EXPECT_EQ(h.num_classes(), 3u);
}

TEST(HierarchyTest, DuplicateClassNameRejected) {
  Hierarchy h("animal");
  ASSERT_TRUE(h.AddClass("bird").ok());
  EXPECT_TRUE(h.AddClass("bird").status().IsAlreadyExists());
  EXPECT_TRUE(h.AddClass("").status().IsInvalidArgument());
}

TEST(HierarchyTest, AddInstanceAndLookup) {
  Hierarchy h("animal");
  NodeId bird = h.AddClass("bird").value();
  NodeId tweety = h.AddInstance(S("tweety"), bird).value();
  EXPECT_TRUE(h.is_instance(tweety));
  EXPECT_EQ(h.FindInstance(S("tweety")).value(), tweety);
  EXPECT_EQ(h.InstanceValue(tweety), S("tweety"));
  EXPECT_EQ(h.NodeName(tweety), "tweety");
  EXPECT_TRUE(h.AddInstance(S("tweety")).status().IsAlreadyExists());
}

TEST(HierarchyTest, InstancesCannotHaveChildren) {
  Hierarchy h("animal");
  NodeId tweety = h.AddInstance(S("tweety")).value();
  EXPECT_TRUE(h.AddClass("sub", tweety).status().IsInvalidArgument());
  NodeId bird = h.AddClass("bird").value();
  EXPECT_TRUE(h.AddEdge(tweety, bird).IsInvalidArgument());
}

TEST(HierarchyTest, FindByNameResolvesClassOrInstance) {
  Hierarchy h("animal");
  NodeId bird = h.AddClass("bird").value();
  NodeId tweety = h.AddInstance(S("tweety"), bird).value();
  EXPECT_EQ(h.FindByName("bird").value(), bird);
  EXPECT_EQ(h.FindByName("tweety").value(), tweety);
  EXPECT_TRUE(h.FindByName("nessie").status().IsNotFound());
}

TEST(HierarchyTest, InternFindsOrAdds) {
  Hierarchy h("size");
  NodeId a = h.Intern(Value::Int(3000));
  NodeId b = h.Intern(Value::Int(3000));
  NodeId c = h.Intern(Value::Int(2000));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(h.num_instances(), 2u);
}

TEST(HierarchyTest, MultipleInheritanceViaAddEdge) {
  Hierarchy h("animal");
  NodeId royal = h.AddClass("royal").value();
  NodeId indian = h.AddClass("indian").value();
  NodeId appu = h.AddInstance(S("appu"), royal).value();
  ASSERT_TRUE(h.AddEdge(indian, appu).ok());
  EXPECT_TRUE(h.Subsumes(royal, appu));
  EXPECT_TRUE(h.Subsumes(indian, appu));
  EXPECT_FALSE(h.Comparable(royal, indian));
}

TEST(HierarchyTest, TypeIrredundancyRejectsCycles) {
  Hierarchy h("x");
  NodeId a = h.AddClass("a").value();
  NodeId b = h.AddClass("b", a).value();
  EXPECT_TRUE(h.AddEdge(b, a).IsIntegrityViolation());
}

TEST(HierarchyTest, RedundantEdgeDroppedInOffPathMode) {
  Hierarchy h("x");
  NodeId a = h.AddClass("a").value();
  NodeId b = h.AddClass("b", a).value();
  NodeId c = h.AddClass("c", b).value();
  // a already reaches c through b.
  ASSERT_TRUE(h.AddEdge(a, c).ok());
  EXPECT_FALSE(h.dag().HasEdge(a, c));
  EXPECT_FALSE(h.dag().HasRedundantEdge());
}

TEST(HierarchyTest, RedundantEdgeKeptInOnPathMode) {
  Hierarchy h("x", HierarchyOptions{.keep_redundant_edges = true});
  NodeId a = h.AddClass("a").value();
  NodeId b = h.AddClass("b", a).value();
  NodeId c = h.AddClass("c", b).value();
  ASSERT_TRUE(h.AddEdge(a, c).ok());
  EXPECT_TRUE(h.dag().HasEdge(a, c));
  // Exact duplicate is still a no-op.
  EXPECT_TRUE(h.AddEdge(a, c).ok());
}

TEST(HierarchyTest, MeetOfComparableNodes) {
  Hierarchy h("x");
  NodeId a = h.AddClass("a").value();
  NodeId b = h.AddClass("b", a).value();
  NodeId c = h.AddClass("c").value();
  EXPECT_EQ(h.Meet(a, b), b);
  EXPECT_EQ(h.Meet(b, a), b);
  EXPECT_EQ(h.Meet(a, a), a);
  EXPECT_EQ(h.Meet(b, c), kInvalidNode);
}

TEST(HierarchyTest, MaximalCommonDescendantsComparablePair) {
  Hierarchy h("x");
  NodeId a = h.AddClass("a").value();
  NodeId b = h.AddClass("b", a).value();
  EXPECT_EQ(h.MaximalCommonDescendants(a, b), (std::vector<NodeId>{b}));
}

TEST(HierarchyTest, MaximalCommonDescendantsOverlap) {
  Hierarchy h("x");
  NodeId a = h.AddClass("a").value();
  NodeId b = h.AddClass("b").value();
  NodeId m = h.AddClass("m", a).value();
  ASSERT_TRUE(h.AddEdge(b, m).ok());
  NodeId i = h.AddInstance(S("i"), m).value();
  (void)i;
  EXPECT_EQ(h.MaximalCommonDescendants(a, b), (std::vector<NodeId>{m}));
}

TEST(HierarchyTest, MaximalCommonDescendantsDisjoint) {
  Hierarchy h("x");
  NodeId a = h.AddClass("a").value();
  NodeId b = h.AddClass("b").value();
  EXPECT_TRUE(h.MaximalCommonDescendants(a, b).empty());
}

TEST(HierarchyTest, MaximalCommonDescendantsMultiple) {
  Hierarchy h("x");
  NodeId a = h.AddClass("a").value();
  NodeId b = h.AddClass("b").value();
  NodeId m1 = h.AddClass("m1", a).value();
  NodeId m2 = h.AddClass("m2", a).value();
  ASSERT_TRUE(h.AddEdge(b, m1).ok());
  ASSERT_TRUE(h.AddEdge(b, m2).ok());
  std::vector<NodeId> mcd = h.MaximalCommonDescendants(a, b);
  EXPECT_EQ(mcd, (std::vector<NodeId>{m1, m2}));
}

TEST(HierarchyTest, AtomsUnder) {
  Hierarchy h("animal");
  NodeId bird = h.AddClass("bird").value();
  NodeId penguin = h.AddClass("penguin", bird).value();
  NodeId tweety = h.AddInstance(S("tweety"), bird).value();
  NodeId paul = h.AddInstance(S("paul"), penguin).value();
  NodeId rex = h.AddInstance(S("rex")).value();  // not a bird
  (void)rex;
  std::vector<NodeId> atoms = h.AtomsUnder(bird);
  EXPECT_EQ(atoms, (std::vector<NodeId>{tweety, paul}));
  EXPECT_EQ(h.CountAtomsUnder(bird), 2u);
  EXPECT_EQ(h.CountAtomsUnder(h.root()), 3u);
  EXPECT_EQ(h.AtomsUnder(paul), (std::vector<NodeId>{paul}));
}

TEST(HierarchyTest, PreferenceEdgesAffectBindsBelowOnly) {
  Hierarchy h("x");
  NodeId a = h.AddClass("a").value();
  NodeId b = h.AddClass("b").value();
  ASSERT_TRUE(h.AddPreferenceEdge(a, b).ok());
  EXPECT_FALSE(h.Subsumes(a, b));
  EXPECT_TRUE(h.BindsBelow(a, b));
  EXPECT_FALSE(h.BindsBelow(b, a));
  EXPECT_EQ(h.num_preference_edges(), 1u);
}

TEST(HierarchyTest, PreferenceCycleRejected) {
  Hierarchy h("x");
  NodeId a = h.AddClass("a").value();
  NodeId b = h.AddClass("b").value();
  ASSERT_TRUE(h.AddPreferenceEdge(a, b).ok());
  EXPECT_TRUE(h.AddPreferenceEdge(b, a).IsIntegrityViolation());
  // Also via subsumption: c subsumes d, so preferring c over d would cycle.
  NodeId c = h.AddClass("c").value();
  NodeId d = h.AddClass("d", c).value();
  EXPECT_TRUE(h.AddPreferenceEdge(d, c).IsIntegrityViolation());
}

TEST(HierarchyTest, EliminateNodePreservesSubsumption) {
  Hierarchy h("animal");
  NodeId bird = h.AddClass("bird").value();
  NodeId penguin = h.AddClass("penguin", bird).value();
  NodeId paul = h.AddInstance(S("paul"), penguin).value();
  ASSERT_TRUE(h.EliminateNode(penguin).ok());
  EXPECT_TRUE(h.Subsumes(bird, paul));
  EXPECT_TRUE(h.FindClass("penguin").status().IsNotFound());
  EXPECT_EQ(h.num_classes(), 2u);
  // Name can be reused after elimination.
  EXPECT_TRUE(h.AddClass("penguin", bird).ok());
}

TEST(HierarchyTest, EliminateRootRejected) {
  Hierarchy h("animal");
  EXPECT_TRUE(h.EliminateNode(h.root()).IsInvalidArgument());
}

TEST(HierarchyTest, ClassesAndInstancesEnumeration) {
  Hierarchy h("animal");
  NodeId bird = h.AddClass("bird").value();
  h.AddInstance(S("tweety"), bird).value();
  EXPECT_EQ(h.Classes().size(), 2u);
  EXPECT_EQ(h.Instances().size(), 1u);
  EXPECT_EQ(h.Nodes().size(), 3u);
}

}  // namespace
}  // namespace hirel

// Tests for the HQL statements beyond the paper's core: COMPRESS,
// BEGIN/COMMIT/ABORT, and SET PREEMPTION.

#include <gtest/gtest.h>

#include "core/inference.h"
#include "hql/executor.h"

namespace hirel {
namespace hql {
namespace {

constexpr const char* kTreeZoo = R"(
CREATE HIERARCHY animal;
CREATE CLASS bird IN animal;
CREATE CLASS canary IN animal UNDER bird;
CREATE CLASS penguin IN animal UNDER bird;
CREATE CLASS afp IN animal UNDER penguin;
CREATE INSTANCE tweety IN animal UNDER canary;
CREATE INSTANCE paul IN animal UNDER penguin;
CREATE INSTANCE pamela IN animal UNDER afp;
CREATE INSTANCE peter IN animal UNDER afp;
CREATE RELATION flies (who: animal);
)";

TEST(HqlExtensionsTest, CompressStatement) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kTreeZoo).ok());
  ASSERT_TRUE(exec.Execute(R"(
    ASSERT flies(tweety);
    ASSERT flies(paul);
    ASSERT flies(pamela);
    ASSERT flies(peter);
  )").ok());
  std::string out = exec.Execute("COMPRESS flies;").value();
  EXPECT_NE(out.find("saved 3 tuple(s)"), std::string::npos);
  HierarchicalRelation* flies =
      exec.database().GetRelation("flies").value();
  EXPECT_EQ(flies->size(), 1u);
}

TEST(HqlExtensionsTest, CompressRejectsDagHierarchies) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kTreeZoo).ok());
  ASSERT_TRUE(
      exec.Execute("CREATE CLASS seabird IN animal UNDER bird;"
                   "CONNECT seabird TO paul IN animal;")
          .ok());
  EXPECT_TRUE(exec.Execute("COMPRESS flies;").status().IsNotSupported());
}

TEST(HqlExtensionsTest, TransactionCommit) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kTreeZoo).ok());
  // Facts are staged, invisible until COMMIT, and validated once.
  std::string out = exec.Execute(R"(
    BEGIN flies;
    ASSERT flies(ALL bird);
    DENY flies(ALL penguin);
    ASSERT flies(ALL afp);
    COMMIT;
  )").value();
  EXPECT_NE(out.find("committed"), std::string::npos);
  HierarchicalRelation* flies =
      exec.database().GetRelation("flies").value();
  EXPECT_EQ(flies->size(), 3u);
}

TEST(HqlExtensionsTest, TransactionConflictRollsBack) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(R"(
    CREATE HIERARCHY student;
    CREATE CLASS obsequious IN student;
    CREATE INSTANCE john IN student UNDER obsequious;
    CREATE HIERARCHY teacher;
    CREATE CLASS incoherent IN teacher;
    CREATE INSTANCE jim IN teacher UNDER incoherent;
    CREATE RELATION respects (who: student, whom: teacher);
  )").ok());
  Result<std::string> out = exec.Execute(R"(
    BEGIN respects;
    ASSERT respects(ALL obsequious, ALL teacher);
    DENY respects(ALL student, ALL incoherent);
    COMMIT;
  )");
  EXPECT_TRUE(out.status().IsConflict());
  EXPECT_TRUE(
      exec.database().GetRelation("respects").value()->empty());
  // The transaction is closed after the failed commit.
  EXPECT_TRUE(exec.Execute("COMMIT;").status().IsInvalidArgument());
}

TEST(HqlExtensionsTest, TransactionAbort) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kTreeZoo).ok());
  ASSERT_TRUE(exec.Execute(
      "BEGIN flies; ASSERT flies(ALL bird); ABORT;").ok());
  EXPECT_TRUE(exec.database().GetRelation("flies").value()->empty());
  EXPECT_TRUE(exec.Execute("ABORT;").status().IsInvalidArgument());
}

TEST(HqlExtensionsTest, NestedBeginRejected) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kTreeZoo).ok());
  ASSERT_TRUE(exec.Execute("BEGIN flies;").ok());
  EXPECT_TRUE(exec.Execute("BEGIN flies;").status().IsInvalidArgument());
  ASSERT_TRUE(exec.Execute("ABORT;").ok());
}

TEST(HqlExtensionsTest, DropGuardedWhileTransactionOpen) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kTreeZoo).ok());
  ASSERT_TRUE(exec.Execute("BEGIN flies;").ok());
  EXPECT_TRUE(
      exec.Execute("DROP RELATION flies;").status().IsInvalidArgument());
  ASSERT_TRUE(exec.Execute("ABORT; DROP RELATION flies;").ok());
}

TEST(HqlExtensionsTest, FactsOutsideTheTransactionStillApplyDirectly) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kTreeZoo).ok());
  ASSERT_TRUE(exec.Execute("CREATE RELATION swims (who: animal);").ok());
  ASSERT_TRUE(exec.Execute("BEGIN flies; ASSERT flies(ALL bird);").ok());
  // swims is not part of the transaction: applied immediately.
  ASSERT_TRUE(exec.Execute("ASSERT swims(ALL penguin);").ok());
  EXPECT_EQ(exec.database().GetRelation("swims").value()->size(), 1u);
  EXPECT_TRUE(exec.database().GetRelation("flies").value()->empty());
  ASSERT_TRUE(exec.Execute("COMMIT;").ok());
  EXPECT_EQ(exec.database().GetRelation("flies").value()->size(), 1u);
}

TEST(HqlExtensionsTest, SetPreemptionChangesSemantics) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kTreeZoo).ok());
  ASSERT_TRUE(exec.Execute(R"(
    CREATE CLASS galapagos IN animal UNDER penguin;
    CREATE INSTANCE patricia IN animal UNDER afp, galapagos;
    ASSERT flies(ALL bird);
    ASSERT flies(ALL afp);
    DENY flies(ALL penguin);
  )").ok());
  // Off-path (default): patricia flies.
  std::string off = exec.Execute("EXPLAIN flies(patricia);").value();
  EXPECT_NE(off.find("(patricia): +"), std::string::npos);
  // On-path: patricia is conflicted.
  ASSERT_TRUE(exec.Execute("SET PREEMPTION onpath;").ok());
  std::string on = exec.Execute("EXPLAIN flies(patricia);").value();
  EXPECT_NE(on.find("CONFLICT"), std::string::npos);
  // Back to off-path by name, case-insensitive.
  ASSERT_TRUE(exec.Execute("SET PREEMPTION OffPath;").ok());
  EXPECT_TRUE(exec.Execute("SET PREEMPTION sideways;")
                  .status()
                  .IsInvalidArgument());
}


TEST(HqlExtensionsTest, RulesRegisterDeriveAndShow) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kTreeZoo).ok());
  ASSERT_TRUE(exec.Execute(R"(
    ASSERT flies(ALL bird);
    DENY flies(ALL penguin);
    ASSERT flies(ALL afp);
    CREATE RELATION travels_far (who: animal);
    RULE 'travels_far(?x) :- flies(?x).';
  )").ok());
  std::string out = exec.Execute("DERIVE;").value();
  EXPECT_NE(out.find("derived 3 fact(s)"), std::string::npos);
  std::string rules = exec.Execute("SHOW RULES;").value();
  EXPECT_NE(rules.find("travels_far(?x) :- flies(?x)."), std::string::npos);
  std::string ext = exec.Execute("EXTENSION travels_far;").value();
  EXPECT_NE(ext.find("tweety"), std::string::npos);
  EXPECT_EQ(ext.find("paul"), std::string::npos);
}

TEST(HqlExtensionsTest, BadRuleRejectedAtRegistration) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kTreeZoo).ok());
  EXPECT_TRUE(exec.Execute("RULE 'nothing(?x) :- flies(?x).';")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(exec.Execute("RULE 'flies(?y) :- flies(?x).';")
                  .status()
                  .IsInvalidArgument());
  // Failed registrations leave no rule behind.
  std::string rules = exec.Execute("SHOW RULES;").value();
  EXPECT_EQ(rules, "rules:\n");
}


TEST(HqlExtensionsTest, CountAndRollUp) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kTreeZoo).ok());
  ASSERT_TRUE(exec.Execute(R"(
    ASSERT flies(ALL bird);
    DENY flies(ALL penguin);
    ASSERT flies(ALL afp);
  )").ok());
  std::string count = exec.Execute("COUNT flies;").value();
  EXPECT_NE(count.find("count(flies) = 3"), std::string::npos);
  std::string rollup = exec.Execute("COUNT flies BY who;").value();
  EXPECT_NE(rollup.find("bird: 3"), std::string::npos);
  EXPECT_TRUE(exec.Execute("COUNT flies BY nope;").status().IsNotFound());
}


TEST(HqlExtensionsTest, ShowSubsumptionAndBinding) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kTreeZoo).ok());
  ASSERT_TRUE(exec.Execute(R"(
    ASSERT flies(ALL bird);
    DENY flies(ALL penguin);
    ASSERT flies(ALL afp);
  )").ok());
  std::string subsumption = exec.Execute("SHOW SUBSUMPTION flies;").value();
  EXPECT_NE(subsumption.find("universal"), std::string::npos);
  EXPECT_NE(subsumption.find("(bird)"), std::string::npos);
  std::string binding = exec.Execute("SHOW BINDING flies(pamela);").value();
  EXPECT_NE(binding.find("tuple-binding graph for (pamela)"),
            std::string::npos);
  EXPECT_NE(binding.find("<item>"), std::string::npos);
  EXPECT_TRUE(exec.Execute("SHOW BINDING nope(x);").status().IsNotFound());
}

TEST(HqlExtensionsTest, DropClassRunsNodeElimination) {
  Executor exec;
  ASSERT_TRUE(exec.Execute(kTreeZoo).ok());
  ASSERT_TRUE(exec.Execute("ASSERT flies(ALL bird);").ok());
  // penguin carries no tuple: safe to eliminate; paul is reconnected
  // under bird by the node-elimination procedure.
  ASSERT_TRUE(exec.Execute("DROP CLASS penguin IN animal;").ok());
  Hierarchy* animal = exec.database().GetHierarchy("animal").value();
  EXPECT_TRUE(animal->FindClass("penguin").status().IsNotFound());
  NodeId bird = animal->FindClass("bird").value();
  NodeId paul = animal->FindInstance(Value::String("paul")).value();
  EXPECT_TRUE(animal->Subsumes(bird, paul));
  // bird DOES carry a tuple: elimination refused.
  EXPECT_TRUE(exec.Execute("DROP CLASS bird IN animal;").status()
                  .IsIntegrityViolation());
  // Instances can be eliminated too.
  ASSERT_TRUE(exec.Execute("DROP INSTANCE paul IN animal;").ok());
  EXPECT_TRUE(
      animal->FindInstance(Value::String("paul")).status().IsNotFound());
}

}  // namespace
}  // namespace hql
}  // namespace hirel

// Incremental maintenance: the mutation journal, the hierarchy edit
// journal, the subsumption-graph patch path, delta consolidate, and the
// semi-naive DERIVE fast path must all be byte-identical to their
// from-scratch counterparts — the whole feature is an invisible
// optimisation, so every test here is an equivalence test plus the
// bookkeeping (outcomes, stats, invalidation) that makes it observable.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "catalog/database.h"
#include "common/random.h"
#include "core/consolidate.h"
#include "core/explicate.h"
#include "core/mutation_journal.h"
#include "core/subsumption.h"
#include "core/subsumption_cache.h"
#include "hql/executor.h"
#include "rules/rule.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using GetOutcome = SubsumptionCache::GetOutcome;

void ExpectGraphEq(const SubsumptionGraph& got, const SubsumptionGraph& want,
                   const std::string& context) {
  EXPECT_EQ(got.nodes, want.nodes) << context;
  EXPECT_EQ(got.successors, want.successors) << context;
  EXPECT_EQ(got.predecessors, want.predecessors) << context;
  EXPECT_EQ(got.sources, want.sources) << context;
}

/// The relation's content as a sorted (item, truth) list — the
/// storage-independent notion of "the same relation".
std::vector<std::pair<Item, Truth>> Content(
    const HierarchicalRelation& rel) {
  std::vector<std::pair<Item, Truth>> out;
  for (TupleId id : rel.TupleIds()) {
    HTuple t = rel.tuple(id);
    out.emplace_back(std::move(t.item), t.truth);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ----- MutationJournal -------------------------------------------------------

TEST(MutationJournalTest, SinceReturnsRecordsNewerThanVersion) {
  MutationJournal j;
  for (uint64_t v = 1; v <= 5; ++v) {
    j.Append({MutationJournal::Record::Kind::kInsert, Truth::kPositive,
              static_cast<TupleId>(v), v, Item{}});
  }
  auto since = j.Since(2);
  ASSERT_TRUE(since.has_value());
  ASSERT_EQ(since->size(), 3u);
  EXPECT_EQ(since->front().version, 3u);
  EXPECT_EQ(since->back().version, 5u);
  // Version 0 predates nothing recorded, but the journal has never
  // dropped, so it still covers it completely.
  EXPECT_TRUE(j.Covers(0));
  EXPECT_EQ(j.Since(0)->size(), 5u);
}

TEST(MutationJournalTest, OverflowWithdrawsCoverage) {
  MutationJournal j;
  const size_t total = MutationJournal::kCapacity + 10;
  for (uint64_t v = 1; v <= total; ++v) {
    j.Append({MutationJournal::Record::Kind::kInsert, Truth::kPositive,
              static_cast<TupleId>(v), v, Item{}});
  }
  EXPECT_EQ(j.size(), MutationJournal::kCapacity);
  EXPECT_EQ(j.dropped(), 10u);
  // The newest dropped record has stamp 10: anything older is uncovered.
  EXPECT_FALSE(j.Covers(9));
  EXPECT_FALSE(j.Since(9).has_value());
  ASSERT_TRUE(j.Covers(10));
  EXPECT_EQ(j.Since(10)->size(), MutationJournal::kCapacity);
}

TEST(MutationJournalTest, CutInvalidatesEverythingAtOrBefore) {
  MutationJournal j;
  j.Append({MutationJournal::Record::Kind::kInsert, Truth::kPositive,
            TupleId{1}, 1, Item{}});
  j.Cut(7);
  EXPECT_EQ(j.size(), 0u);
  EXPECT_FALSE(j.Covers(6));
  EXPECT_TRUE(j.Covers(7));
  EXPECT_TRUE(j.Since(7)->empty());
}

TEST(MutationJournalTest, RelationRecordsItsMutations) {
  testing::FlyingFixture f;
  uint64_t mark = f.flies->version();
  TupleId added = f.flies->Insert({f.tweety}, Truth::kPositive).value();
  ASSERT_TRUE(f.flies->Erase(added).ok());
  auto since = f.flies->journal().Since(mark);
  ASSERT_TRUE(since.has_value());
  ASSERT_EQ(since->size(), 2u);
  EXPECT_EQ((*since)[0].kind, MutationJournal::Record::Kind::kInsert);
  EXPECT_EQ((*since)[0].id, added);
  EXPECT_EQ((*since)[1].kind, MutationJournal::Record::Kind::kErase);
  EXPECT_EQ((*since)[1].item, Item{f.tweety});
  // Clear() reuses tuple ids, so it must sever delta coverage.
  f.flies->Clear();
  EXPECT_FALSE(f.flies->journal().Covers(mark));
}

// ----- Hierarchy edit journal ------------------------------------------------

TEST(HierarchyJournalTest, NodeAdditionsLeaveNoRecordButStayCovered) {
  Database db;
  Hierarchy* h = testing::BuildTreeHierarchy(db, "d", 2, 3, 2);
  uint64_t mark = h->version();
  // New nodes cannot change binding between pre-existing nodes.
  ASSERT_TRUE(h->AddClass("late", h->root()).ok());
  std::vector<NodeId> affected;
  EXPECT_TRUE(h->AffectedSince(mark, &affected));
  EXPECT_TRUE(affected.empty());
}

TEST(HierarchyJournalTest, NovelEdgeReportsBothCones) {
  Database db;
  Hierarchy* h = testing::BuildTreeHierarchy(db, "d", 2, 3, 2);
  std::vector<NodeId> top = h->Children(h->root());
  NodeId left = top[0];
  NodeId right_leaf = h->Children(top[1])[0];
  uint64_t mark = h->version();
  ASSERT_TRUE(h->AddEdge(left, right_leaf).ok());
  std::vector<NodeId> affected;
  ASSERT_TRUE(h->AffectedSince(mark, &affected));
  // Both endpoints of the new edge must be reported (ancestors of the
  // parent, descendants of the child).
  EXPECT_NE(std::find(affected.begin(), affected.end(), left),
            affected.end());
  EXPECT_NE(std::find(affected.begin(), affected.end(), right_leaf),
            affected.end());
}

TEST(HierarchyJournalTest, RingOverflowWithdrawsCoverage) {
  Database db;
  Hierarchy* h = db.CreateHierarchy("d").value();
  // A long chain gives plenty of novel edges to record.
  std::vector<NodeId> chain;
  for (int i = 0; i < 80; ++i) {
    chain.push_back(h->AddClass("c" + std::to_string(i), h->root()).value());
  }
  uint64_t mark = h->version();
  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    ASSERT_TRUE(h->AddEdge(chain[i], chain[i + 1]).ok());
  }
  std::vector<NodeId> affected;
  EXPECT_FALSE(h->AffectedSince(mark, &affected)) << "79 recorded edits "
      "must overflow the 64-entry ring";
}

// ----- Graph patching through the cache --------------------------------------

TEST(SubsumptionCachePatchTest, TupleChurnPatchesByteIdentically) {
  testing::FlyingFixture f;
  SubsumptionCache& cache = f.db.subsumption_cache();
  GetOutcome outcome = GetOutcome::kNone;
  cache.Get(*f.flies, 1, &outcome);
  EXPECT_EQ(outcome, GetOutcome::kRebuilt);  // first build of the entry
  cache.Get(*f.flies, 1, &outcome);
  EXPECT_EQ(outcome, GetOutcome::kHit);

  // Insert, truth-churn, and erase, patching after each step.
  TupleId added = f.flies->Insert({f.tweety}, Truth::kPositive).value();
  const SubsumptionGraph& patched1 = cache.Get(*f.flies, 1, &outcome);
  EXPECT_EQ(outcome, GetOutcome::kPatched);
  ExpectGraphEq(patched1, BuildSubsumptionGraph(*f.flies), "after insert");

  ASSERT_TRUE(f.flies->Erase(added).ok());
  TupleId readded = f.flies->Insert({f.tweety}, Truth::kNegative).value();
  const SubsumptionGraph& patched2 = cache.Get(*f.flies, 1, &outcome);
  EXPECT_EQ(outcome, GetOutcome::kPatched);
  ExpectGraphEq(patched2, BuildSubsumptionGraph(*f.flies), "after churn");

  ASSERT_TRUE(f.flies->Erase(readded).ok());
  const SubsumptionGraph& patched3 = cache.Get(*f.flies, 1, &outcome);
  EXPECT_EQ(outcome, GetOutcome::kPatched);
  ExpectGraphEq(patched3, BuildSubsumptionGraph(*f.flies), "after erase");

  SubsumptionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, stats.patches + stats.rebuilds);
  EXPECT_EQ(stats.patches, 3u);
  EXPECT_EQ(stats.rebuilds, 1u);
}

TEST(SubsumptionCachePatchTest, HierarchyEditPatchesByteIdentically) {
  testing::FlyingFixture f;
  SubsumptionCache& cache = f.db.subsumption_cache();
  cache.Get(*f.flies);

  // A novel subsumption edge re-relates already-asserted items: peter
  // (asserted atomically) slides under the penguin exception structure.
  ASSERT_TRUE(f.animal->AddEdge(f.galapagos, f.peter).ok());
  GetOutcome outcome = GetOutcome::kNone;
  const SubsumptionGraph& patched = cache.Get(*f.flies, 1, &outcome);
  EXPECT_EQ(outcome, GetOutcome::kPatched);
  ExpectGraphEq(patched, BuildSubsumptionGraph(*f.flies), "after CONNECT");

  // A preference edge changes the binding order itself.
  ASSERT_TRUE(f.animal->AddPreferenceEdge(f.penguin, f.galapagos).ok());
  const SubsumptionGraph& patched2 = cache.Get(*f.flies, 1, &outcome);
  EXPECT_EQ(outcome, GetOutcome::kPatched);
  ExpectGraphEq(patched2, BuildSubsumptionGraph(*f.flies), "after PREFER");
}

TEST(SubsumptionCachePatchTest, IncrementalOffForcesRebuild) {
  testing::FlyingFixture f;
  SubsumptionCache& cache = f.db.subsumption_cache();
  cache.Get(*f.flies);
  cache.set_incremental(false);
  (void)f.flies->Insert({f.tweety}, Truth::kPositive);
  GetOutcome outcome = GetOutcome::kNone;
  cache.Get(*f.flies, 1, &outcome);
  EXPECT_EQ(outcome, GetOutcome::kRebuilt);
  EXPECT_EQ(cache.stats().journal_overflows, 0u);
}

TEST(SubsumptionCachePatchTest, JournalOverflowForcesRebuild) {
  testing::FlyingFixture f;
  SubsumptionCache& cache = f.db.subsumption_cache();
  cache.Get(*f.flies);
  // More mutations than the journal holds: coverage of the cached stamp
  // is withdrawn and the rebuild is attributed to the overflow.
  for (size_t i = 0; i < MutationJournal::kCapacity + 8; ++i) {
    TupleId id = f.flies->Insert({f.tweety}, Truth::kPositive).value();
    ASSERT_TRUE(f.flies->Erase(id).ok());
  }
  GetOutcome outcome = GetOutcome::kNone;
  const SubsumptionGraph& rebuilt = cache.Get(*f.flies, 1, &outcome);
  EXPECT_EQ(outcome, GetOutcome::kRebuilt);
  EXPECT_EQ(cache.stats().journal_overflows, 1u);
  ExpectGraphEq(rebuilt, BuildSubsumptionGraph(*f.flies), "after overflow");
}

TEST(SubsumptionCachePatchTest, ChurnOfTheSameIdCancelsToAFreeRefresh) {
  // Insert-then-erase of the same id nets out in the journal fold: the
  // delta is empty and the "patch" is a stamp-only refresh, not a rebuild.
  testing::FlyingFixture f;
  SubsumptionCache& cache = f.db.subsumption_cache();
  cache.Get(*f.flies);
  for (int i = 0; i < 100; ++i) {
    TupleId id = f.flies->Insert({f.tweety}, Truth::kPositive).value();
    ASSERT_TRUE(f.flies->Erase(id).ok());
  }
  GetOutcome outcome = GetOutcome::kNone;
  const SubsumptionGraph& g = cache.Get(*f.flies, 1, &outcome);
  EXPECT_EQ(outcome, GetOutcome::kPatched);
  ExpectGraphEq(g, BuildSubsumptionGraph(*f.flies), "after cancelling churn");
}

TEST(SubsumptionCachePatchTest, LargeDeltaTakesTheRebuildHeuristic) {
  // 60 net insertions into a small relation: the journal still covers the
  // stamp but the delta rivals the relation itself, so the cost heuristic
  // must pick a rebuild — without charging a journal overflow.
  Database db;
  Hierarchy* h = testing::BuildTreeHierarchy(db, "d", 2, 4, 10);
  HierarchicalRelation* rel =
      db.CreateRelation("r", {{"a", "d"}}).value();
  std::vector<NodeId> atoms = h->Instances();
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(rel->Insert({atoms[i]}, Truth::kPositive).ok());
  }
  SubsumptionCache& cache = db.subsumption_cache();
  cache.Get(*rel);
  for (size_t i = 8; i < 68; ++i) {
    ASSERT_TRUE(rel->Insert({atoms[i]}, Truth::kPositive).ok());
  }
  GetOutcome outcome = GetOutcome::kNone;
  const SubsumptionGraph& g = cache.Get(*rel, 1, &outcome);
  EXPECT_EQ(outcome, GetOutcome::kRebuilt);
  EXPECT_EQ(cache.stats().journal_overflows, 0u);
  ExpectGraphEq(g, BuildSubsumptionGraph(*rel), "after bulk insert");
}

// ----- Database mutation entry points must invalidate ------------------------

TEST(SubsumptionCacheInvalidationTest, AdoptReplaceCannotServeStaleGraph) {
  // Regression: AdoptRelation over an existing name installs a relation
  // whose fresh journal (floor 0) claims coverage of ANY older stamp, so a
  // surviving cache entry would happily "patch" the old relation's graph
  // with an empty delta. The adopt must invalidate unconditionally.
  testing::FlyingFixture f;
  SubsumptionCache& cache = f.db.subsumption_cache();
  EXPECT_EQ(cache.Get(*f.flies).nodes.size(), 4u);

  Schema schema;
  ASSERT_TRUE(schema.Append("who", f.animal).ok());
  HierarchicalRelation replacement("flies", std::move(schema));
  ASSERT_TRUE(replacement.Insert({f.paul}, Truth::kPositive).ok());
  HierarchicalRelation* adopted =
      f.db.AdoptRelation(std::move(replacement), /*replace_existing=*/true)
          .value();

  GetOutcome outcome = GetOutcome::kNone;
  const SubsumptionGraph& graph = cache.Get(*adopted, 1, &outcome);
  EXPECT_EQ(outcome, GetOutcome::kRebuilt);
  ASSERT_EQ(graph.nodes.size(), 1u);
  EXPECT_EQ(adopted->tuple(graph.nodes[0]).item, Item{f.paul});

  // The one-arg form still refuses to replace.
  Schema again;
  ASSERT_TRUE(again.Append("who", f.animal).ok());
  EXPECT_TRUE(f.db.AdoptRelation(HierarchicalRelation("flies",
                                                      std::move(again)))
                  .status()
                  .IsAlreadyExists());
}

TEST(SubsumptionCacheInvalidationTest, DropRelationDropsTheEntry) {
  testing::FlyingFixture f;
  SubsumptionCache& cache = f.db.subsumption_cache();
  cache.Get(*f.flies);
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(f.db.DropRelation("flies").ok());
  EXPECT_EQ(cache.size(), 0u);
}

// ----- Delta consolidate -----------------------------------------------------

TEST(ConsolidateDeltaTest, MatchesFullConsolidateOnSeededChanges) {
  testing::FlyingFixture f;
  ASSERT_TRUE(ConsolidateInPlace(*f.flies).ok());

  // +tweety is redundant under +ALL bird; so is a second exact copy of
  // the penguin denial's child structure. Seed exactly the new ids.
  TupleId t1 = f.flies->Insert({f.tweety}, Truth::kPositive).value();
  TupleId t2 = f.flies->Insert({f.paul}, Truth::kNegative).value();

  HierarchicalRelation full_copy(*f.flies);
  size_t removed_full = ConsolidateInPlace(full_copy).value();

  SubsumptionGraph graph = BuildSubsumptionGraph(*f.flies);
  size_t removed_delta =
      ConsolidateDelta(*f.flies, {}, graph, {t1, t2}).value();

  EXPECT_EQ(removed_delta, removed_full);
  EXPECT_EQ(Content(*f.flies), Content(full_copy));
  EXPECT_EQ(Extension(*f.flies).value(), Extension(full_copy).value());
}

TEST(ConsolidateDeltaTest, ExecutorUsesDeltaPathAndMatchesFull) {
  // Two executors run an identical script; A keeps incremental on, B
  // turns it off. A's second CONSOLIDATE must take the delta path (the
  // " (delta)" suffix) and leave the relation byte-identical to B's.
  const std::string setup =
      "CREATE HIERARCHY d;"
      "CREATE CLASS c1 IN d; CREATE CLASS c2 IN d UNDER c1;"
      "CREATE INSTANCE i1 IN d UNDER c2;"
      "CREATE INSTANCE i2 IN d UNDER c2;"
      "CREATE RELATION r (a: d);"
      "ASSERT r(ALL c1); DENY r(ALL c2); ASSERT r(i1);"
      "CONSOLIDATE r;";
  const std::string mutate = "RETRACT r(i1); ASSERT r(i1); ASSERT r(i2);";

  hql::Executor on, off;
  ASSERT_TRUE(off.Execute("SET INCREMENTAL OFF;").ok());
  ASSERT_TRUE(on.Execute(setup).ok());
  ASSERT_TRUE(off.Execute(setup).ok());
  ASSERT_TRUE(on.Execute(mutate).ok());
  ASSERT_TRUE(off.Execute(mutate).ok());

  Result<std::string> con = on.Execute("CONSOLIDATE r;");
  ASSERT_TRUE(con.ok());
  EXPECT_NE(con->find(" (delta)"), std::string::npos) << *con;
  Result<std::string> coff = off.Execute("CONSOLIDATE r;");
  ASSERT_TRUE(coff.ok());
  EXPECT_EQ(coff->find(" (delta)"), std::string::npos) << *coff;

  const HierarchicalRelation* ra =
      std::as_const(on.database()).GetRelation("r").value();
  const HierarchicalRelation* rb =
      std::as_const(off.database()).GetRelation("r").value();
  EXPECT_EQ(Content(*ra), Content(*rb));
}

// ----- Semi-naive DERIVE -----------------------------------------------------

TEST(DeriveIncrementalTest, SemiNaiveMatchesNaive) {
  auto build = [](bool incremental) {
    auto f = std::make_unique<testing::FlyingFixture>();
    HierarchicalRelation* far =
        f->db.CreateRelation("travels_far", {{"who", "animal"}}).value();
    RuleEngine engine(&f->db);
    EXPECT_TRUE(engine.AddRule("travels_far(?x) :- flies(?x).").ok());
    RuleOptions options;
    options.incremental = incremental;
    EXPECT_TRUE(engine.Evaluate(options).ok());
    // A second round over mutated input exercises the append fast path
    // (an all-new-atomic-positive journal) on the incremental side.
    EXPECT_TRUE(f->flies->Insert({f->tweety}, Truth::kPositive).ok());
    EXPECT_TRUE(engine.Evaluate(options).ok());
    return Content(*far);
  };
  EXPECT_EQ(build(true), build(false));
}

// ----- SET INCREMENTAL and metrics surfacing ---------------------------------

TEST(IncrementalHqlTest, SetIncrementalTogglesTheCache) {
  hql::Executor exec;
  EXPECT_TRUE(exec.database().subsumption_cache().incremental());
  Result<std::string> off = exec.Execute("SET INCREMENTAL OFF;");
  ASSERT_TRUE(off.ok());
  EXPECT_NE(off->find("off"), std::string::npos);
  EXPECT_FALSE(exec.database().subsumption_cache().incremental());
  ASSERT_TRUE(exec.Execute("SET INCREMENTAL ON;").ok());
  EXPECT_TRUE(exec.database().subsumption_cache().incremental());
  EXPECT_TRUE(
      exec.Execute("SET INCREMENTAL banana;").status().IsParseError());
  EXPECT_TRUE(exec.Execute("set incremental off;").ok())
      << "keywords are case-insensitive";
  EXPECT_FALSE(exec.database().subsumption_cache().incremental());
}

TEST(IncrementalHqlTest, ShowMetricsSurfacesPatchCounters) {
  hql::Executor exec;
  ASSERT_TRUE(exec
                  .Execute("CREATE HIERARCHY d; CREATE CLASS c IN d;"
                           "CREATE INSTANCE i IN d UNDER c;"
                           "CREATE RELATION r (a: d);"
                           "ASSERT r(ALL c); COUNT r;"
                           "RETRACT r(ALL c); ASSERT r(ALL c); COUNT r;")
                  .ok());
  Result<std::string> metrics = exec.Execute("SHOW METRICS;");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("cache.patched"), std::string::npos);
  EXPECT_NE(metrics->find("cache.rebuilt"), std::string::npos);
  EXPECT_NE(metrics->find("cache.journal_overflows"), std::string::npos);
}

TEST(IncrementalHqlTest, ExplainAnalyzeAnnotatesThePatchPath) {
  hql::Executor exec;
  ASSERT_TRUE(exec
                  .Execute("CREATE HIERARCHY d; CREATE CLASS c IN d;"
                           "CREATE INSTANCE i IN d UNDER c;"
                           "CREATE RELATION r (a: d);"
                           "ASSERT r(ALL c); COUNT r;"
                           "RETRACT r(ALL c); ASSERT r(ALL c);")
                  .ok());
  Result<std::string> plan = exec.Execute("EXPLAIN ANALYZE COUNT r;");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("incremental=on"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("patched=true"), std::string::npos) << *plan;
}

// ----- Randomized equivalence ------------------------------------------------

/// N random mutations — inserts, erases, novel CONNECTs, PREFERs — with the
/// cache's patched graph checked byte-identical to a from-scratch build
/// after every step, at 1 and 4 threads.
class IncrementalEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalEquivalence, PatchedGraphMatchesRebuildUnderRandomChurn) {
  testing::RandomFixtureOptions options;
  options.num_classes = 14;
  options.num_instances = 24;
  options.num_tuples = 10;
  testing::RandomDatabase rdb(GetParam(), options);
  HierarchicalRelation* rel = rdb.relation();
  Hierarchy* h = rdb.hierarchy(0);
  SubsumptionCache& cache = rdb.db().subsumption_cache();
  Random rng(GetParam() * 977 + 13);

  cache.Get(*rel);
  std::vector<NodeId> nodes = h->Nodes();
  for (int step = 0; step < 40; ++step) {
    size_t roll = rng.Index(10);
    if (roll < 4) {
      Item item{nodes[rng.Index(nodes.size())]};
      Truth truth = rng.Bernoulli(0.4) ? Truth::kNegative : Truth::kPositive;
      (void)rel->Insert(item, truth);  // duplicates/conflicts may refuse
    } else if (roll < 7) {
      std::vector<TupleId> ids = rel->TupleIds();
      if (!ids.empty()) {
        ASSERT_TRUE(rel->Erase(ids[rng.Index(ids.size())]).ok());
      }
    } else if (roll < 9) {
      // CONNECT: a novel subsumption edge (cycles are refused; both
      // verdicts are fine — a refusal just mutates nothing).
      (void)h->AddEdge(nodes[rng.Index(nodes.size())],
                       nodes[rng.Index(nodes.size())]);
    } else {
      (void)h->AddPreferenceEdge(nodes[rng.Index(nodes.size())],
                                 nodes[rng.Index(nodes.size())]);
    }
    for (size_t threads : {size_t{1}, size_t{4}}) {
      const SubsumptionGraph& cached = cache.Get(*rel, threads);
      ExpectGraphEq(cached, BuildSubsumptionGraph(*rel, threads),
                    "seed " + std::to_string(GetParam()) + " step " +
                        std::to_string(step) + " threads " +
                        std::to_string(threads));
    }
  }
  SubsumptionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, stats.patches + stats.rebuilds);
  EXPECT_GT(stats.patches, 0u) << "churn this small should mostly patch";
}

/// The same trace fed to two executors — incremental on vs. off — must
/// leave byte-identical relations, consolidation results, and derived
/// facts, on both storage layouts.
TEST_P(IncrementalEquivalence, ExecutorTraceMatchesWithIncrementalOff) {
  for (const char* storage : {"row", "columnar"}) {
    hql::Executor on, off;
    ASSERT_TRUE(off.Execute("SET INCREMENTAL OFF;").ok());
    std::string setup = std::string("SET STORAGE ") + storage + ";" +
                        "CREATE HIERARCHY d;"
                        "CREATE CLASS c0 IN d; CREATE CLASS c1 IN d;"
                        "CREATE CLASS c2 IN d UNDER c0;"
                        "CREATE CLASS c3 IN d UNDER c1;"
                        "CREATE INSTANCE i0 IN d UNDER c2;"
                        "CREATE INSTANCE i1 IN d UNDER c2;"
                        "CREATE INSTANCE i2 IN d UNDER c3;"
                        "CREATE INSTANCE i3 IN d UNDER c3;"
                        "CREATE RELATION r (a: d);"
                        "CREATE RELATION reach (a: d);"
                        "RULE 'reach(?x) :- r(?x).';";
    ASSERT_TRUE(on.Execute(setup).ok());
    ASSERT_TRUE(off.Execute(setup).ok());

    std::vector<std::string> targets = {"ALL c0", "ALL c1", "ALL c2",
                                        "ALL c3", "i0", "i1", "i2", "i3"};
    Random rng(GetParam() * 31 + 7);
    for (int step = 0; step < 60; ++step) {
      size_t roll = rng.Index(12);
      std::string stmt;
      if (roll < 4) {
        stmt = (rng.Bernoulli(0.3) ? "DENY r(" : "ASSERT r(") +
               targets[rng.Index(targets.size())] + ");";
      } else if (roll < 6) {
        stmt = "RETRACT r(" + targets[rng.Index(targets.size())] + ");";
      } else if (roll < 8) {
        stmt = "SELECT * FROM r WHERE a = " +
               targets[rng.Index(targets.size())] + ";";
      } else if (roll < 9) {
        stmt = "CONNECT c" + std::to_string(rng.Index(4)) + " TO i" +
               std::to_string(rng.Index(4)) + " IN d;";
      } else if (roll < 10) {
        stmt = "PREFER c" + std::to_string(rng.Index(4)) + " OVER c" +
               std::to_string(rng.Index(4)) + " IN d;";
      } else if (roll < 11) {
        stmt = "CONSOLIDATE r;";
      } else {
        stmt = "DERIVE;";
      }
      Result<std::string> ra = on.Execute(stmt);
      Result<std::string> rb = off.Execute(stmt);
      ASSERT_EQ(ra.ok(), rb.ok())
          << "seed " << GetParam() << " step " << step << ": " << stmt;
      if (ra.ok() && stmt[0] == 'S') {  // SELECTs must render identically
        EXPECT_EQ(*ra, *rb) << stmt;
      }
    }
    for (const char* name : {"r", "reach"}) {
      const HierarchicalRelation* ra =
          std::as_const(on.database()).GetRelation(name).value();
      const HierarchicalRelation* rb =
          std::as_const(off.database()).GetRelation(name).value();
      EXPECT_EQ(Content(*ra), Content(*rb))
          << name << " diverged (seed " << GetParam() << ", " << storage
          << ")";
      ExpectGraphEq(on.database().subsumption_cache().Get(*ra),
                    BuildSubsumptionGraph(*ra),
                    std::string(name) + " cached graph (seed " +
                        std::to_string(GetParam()) + ")");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace hirel

#include "core/inference.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::ElephantFixture;
using testing::FlyingFixture;
using testing::RespectsFixture;

TEST(InferenceTest, Fig1FlyingCreatures) {
  FlyingFixture f;
  // "We infer that Tweety ... is a flying creature."
  EXPECT_EQ(InferTruth(*f.flies, {f.tweety}).value(), Truth::kPositive);
  // "Paul, a Galapagos penguin, even though a bird, is not a flying
  // creature."
  EXPECT_EQ(InferTruth(*f.flies, {f.paul}).value(), Truth::kNegative);
  // "We therefore conclude that Pamela is a flying creature."
  EXPECT_EQ(InferTruth(*f.flies, {f.pamela}).value(), Truth::kPositive);
  // "...and we conclude that Patricia is a flying creature."
  EXPECT_EQ(InferTruth(*f.flies, {f.patricia}).value(), Truth::kPositive);
  // "There is a specific tuple asserting that Peter is a flying creature,
  // and this tuple overrides all other tuples applicable to Peter."
  EXPECT_EQ(InferTruth(*f.flies, {f.peter}).value(), Truth::kPositive);
}

TEST(InferenceTest, ClassLevelQueries) {
  FlyingFixture f;
  // Facts about classes are manipulated like facts about instances.
  EXPECT_EQ(InferTruth(*f.flies, {f.bird}).value(), Truth::kPositive);
  EXPECT_EQ(InferTruth(*f.flies, {f.canary}).value(), Truth::kPositive);
  EXPECT_EQ(InferTruth(*f.flies, {f.penguin}).value(), Truth::kNegative);
  EXPECT_EQ(InferTruth(*f.flies, {f.galapagos}).value(), Truth::kNegative);
  EXPECT_EQ(InferTruth(*f.flies, {f.afp}).value(), Truth::kPositive);
}

TEST(InferenceTest, ClosedWorldDefaultIsNegative) {
  FlyingFixture f;
  NodeId rex = f.animal->AddInstance(Value::String("rex")).value();
  EXPECT_EQ(InferTruth(*f.flies, {rex}).value(), Truth::kNegative);
  EXPECT_FALSE(Holds(*f.flies, {rex}).value());
  // The whole domain defaults to negative too.
  EXPECT_EQ(InferTruth(*f.flies, {f.animal->root()}).value(),
            Truth::kNegative);
}

TEST(InferenceTest, ArityMismatchRejected) {
  FlyingFixture f;
  EXPECT_TRUE(InferTruth(*f.flies, {f.bird, f.bird}).status()
                  .IsInvalidArgument());
}

TEST(InferenceTest, ConflictReportedWithBinders) {
  RespectsFixture f(/*with_resolver=*/false);
  // Without the resolver tuple, (obsequious, incoherent) inherits + from
  // (obsequious, teacher) and - from (student, incoherent): conflict.
  Result<Truth> r = InferTruth(*f.respects, {f.obsequious, f.incoherent});
  ASSERT_TRUE(r.status().IsConflict());
  EXPECT_NE(r.status().message().find("obsequious"), std::string::npos);
}

TEST(InferenceTest, ResolverTupleRemovesConflict) {
  RespectsFixture f(/*with_resolver=*/true);
  EXPECT_EQ(InferTruth(*f.respects, {f.obsequious, f.incoherent}).value(),
            Truth::kPositive);
  // John (an obsequious student) respects jim (an incoherent teacher).
  EXPECT_EQ(InferTruth(*f.respects, {f.john, f.jim}).value(),
            Truth::kPositive);
  // Mary (a generic student) does not respect jim.
  EXPECT_EQ(InferTruth(*f.respects, {f.mary, f.jim}).value(),
            Truth::kNegative);
  // John respects wendy; mary is not known to respect wendy.
  EXPECT_EQ(InferTruth(*f.respects, {f.john, f.wendy}).value(),
            Truth::kPositive);
  EXPECT_EQ(InferTruth(*f.respects, {f.mary, f.wendy}).value(),
            Truth::kNegative);
}

TEST(InferenceTest, Fig4AppuIsWhiteNotGrey) {
  ElephantFixture f;
  // "Royal elephant binds more strongly to Appu than does elephant, so we
  // conclude that Appu is not grey but white. ... the fact that Appu is an
  // Indian elephant is treated as an irrelevant fact."
  EXPECT_EQ(InferTruth(*f.colors, {f.appu, f.grey}).value(),
            Truth::kNegative);
  EXPECT_EQ(InferTruth(*f.colors, {f.appu, f.white}).value(),
            Truth::kPositive);
}

TEST(InferenceTest, Fig4ClydeIsDappled) {
  ElephantFixture f;
  EXPECT_EQ(InferTruth(*f.colors, {f.clyde, f.grey}).value(),
            Truth::kNegative);
  EXPECT_EQ(InferTruth(*f.colors, {f.clyde, f.white}).value(),
            Truth::kNegative);
  EXPECT_EQ(InferTruth(*f.colors, {f.clyde, f.dappled}).value(),
            Truth::kPositive);
}

TEST(InferenceTest, Fig4OrdinaryElephantsStayGrey) {
  ElephantFixture f;
  EXPECT_EQ(InferTruth(*f.colors, {f.african, f.grey}).value(),
            Truth::kPositive);
  EXPECT_EQ(InferTruth(*f.colors, {f.indian, f.white}).value(),
            Truth::kNegative);
}

TEST(InferenceTest, Fig11EnclosureSizes) {
  ElephantFixture f;
  EXPECT_EQ(InferTruth(*f.enclosure, {f.royal, f.sz3000}).value(),
            Truth::kPositive);
  EXPECT_EQ(InferTruth(*f.enclosure, {f.indian, f.sz3000}).value(),
            Truth::kNegative);
  EXPECT_EQ(InferTruth(*f.enclosure, {f.indian, f.sz2000}).value(),
            Truth::kPositive);
  // Appu is royal AND indian: 3000 is contested... royal inherits from
  // elephant (+3000) while indian denies it. For appu the indian tuple is
  // more specific on no axis - both are incomparable ancestors. But appu
  // inherits -3000 from indian (depth) vs +3000 from elephant (via royal,
  // which has no own tuple): indian- preempts elephant+ because indian is
  // strictly below elephant. No conflict.
  EXPECT_EQ(InferTruth(*f.enclosure, {f.appu, f.sz3000}).value(),
            Truth::kNegative);
  EXPECT_EQ(InferTruth(*f.enclosure, {f.appu, f.sz2000}).value(),
            Truth::kPositive);
}

TEST(InferenceTest, ExceptionToExceptionChainOfArbitraryDepth) {
  // Section 2.1: "one can create exceptions to exceptions in any required
  // exception hierarchy of arbitrary depth."
  Database db;
  Hierarchy* h = db.CreateHierarchy("d").value();
  std::vector<NodeId> chain{h->root()};
  for (int i = 0; i < 6; ++i) {
    chain.push_back(
        h->AddClass("c" + std::to_string(i), chain.back()).value());
  }
  NodeId leaf = h->AddInstance(Value::String("leaf"), chain.back()).value();
  HierarchicalRelation* r = db.CreateRelation("r", {{"v", "d"}}).value();
  // Alternate truth values down the chain.
  for (size_t i = 1; i < chain.size(); ++i) {
    ASSERT_TRUE(r->Insert({chain[i]}, i % 2 == 1 ? Truth::kPositive
                                                 : Truth::kNegative)
                    .ok());
  }
  // The deepest class has index 6 (even -> negative); leaf inherits it.
  EXPECT_EQ(InferTruth(*r, {leaf}).value(), Truth::kNegative);
  for (size_t i = 1; i < chain.size(); ++i) {
    EXPECT_EQ(InferTruth(*r, {chain[i]}).value(),
              i % 2 == 1 ? Truth::kPositive : Truth::kNegative);
  }
}

TEST(InferenceTest, HoldsConvenience) {
  FlyingFixture f;
  EXPECT_TRUE(Holds(*f.flies, {f.tweety}).value());
  EXPECT_FALSE(Holds(*f.flies, {f.paul}).value());
}

}  // namespace
}  // namespace hirel

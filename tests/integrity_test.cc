#include "core/integrity.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::FlyingFixture;
using testing::RespectsFixture;

TEST(IntegrityTest, GuardedInsertAcceptsSafeTuples) {
  FlyingFixture f;
  NodeId ostrich = f.animal->AddClass("ostrich", f.bird).value();
  ASSERT_TRUE(GuardedInsert(*f.flies, {ostrich}, Truth::kNegative).ok());
  EXPECT_EQ(f.flies->size(), 5u);
}

TEST(IntegrityTest, GuardedInsertRejectsConflictCreatingTuple) {
  RespectsFixture f(/*with_resolver=*/false);
  // Start from the consistent prefix (drop the negative tuple first).
  ASSERT_TRUE(
      f.respects->EraseItem({f.student->root(), f.incoherent}).ok());
  ASSERT_TRUE(CheckAmbiguity(*f.respects).ok());
  // Re-inserting the negative tuple through the guard must fail: it
  // creates the Fig. 3 conflict.
  Result<TupleId> r = GuardedInsert(
      *f.respects, {f.student->root(), f.incoherent}, Truth::kNegative);
  ASSERT_TRUE(r.status().IsConflict());
  // And the relation is rolled back.
  EXPECT_EQ(f.respects->size(), 1u);
  EXPECT_TRUE(CheckAmbiguity(*f.respects).ok());
}

TEST(IntegrityTest, GuardedInsertAfterResolverSucceeds) {
  RespectsFixture f(/*with_resolver=*/false);
  ASSERT_TRUE(
      f.respects->EraseItem({f.student->root(), f.incoherent}).ok());
  // Assert the resolver first, then the exception: the Section 3.1
  // discipline.
  ASSERT_TRUE(GuardedInsert(*f.respects, {f.obsequious, f.incoherent},
                            Truth::kPositive)
                  .ok());
  ASSERT_TRUE(GuardedInsert(*f.respects, {f.student->root(), f.incoherent},
                            Truth::kNegative)
                  .ok());
  EXPECT_EQ(f.respects->size(), 3u);
}

TEST(IntegrityTest, GuardedEraseRejectsRemovingResolver) {
  RespectsFixture f(/*with_resolver=*/true);
  // "The former tuple was specifically added to resolve a conflict, and
  // its elimination would produce an inconsistent state in the database."
  Status s = GuardedErase(*f.respects, {f.obsequious, f.incoherent});
  ASSERT_TRUE(s.IsConflict());
  // Rolled back: the resolver is still there.
  EXPECT_TRUE(
      f.respects->FindItem({f.obsequious, f.incoherent}).has_value());
  EXPECT_TRUE(CheckAmbiguity(*f.respects).ok());
}

TEST(IntegrityTest, GuardedEraseAcceptsSafeRemoval) {
  FlyingFixture f;
  ASSERT_TRUE(GuardedErase(*f.flies, {f.peter}).ok());
  EXPECT_EQ(f.flies->size(), 3u);
}

TEST(IntegrityTest, GuardedEraseMissingTuple) {
  FlyingFixture f;
  EXPECT_TRUE(GuardedErase(*f.flies, {f.tweety}).IsNotFound());
}

TEST(IntegrityTest, GuardedInsertRejectsContradiction) {
  FlyingFixture f;
  Result<TupleId> r = GuardedInsert(*f.flies, {f.bird}, Truth::kNegative);
  EXPECT_TRUE(r.status().IsIntegrityViolation());
}

}  // namespace
}  // namespace hirel

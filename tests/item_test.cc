#include "types/item.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace hirel {
namespace {

Value S(const char* s) { return Value::String(s); }

/// Two-attribute environment: student x teacher (Fig. 2).
class ItemTest : public ::testing::Test {
 protected:
  ItemTest() : student_("student"), teacher_("teacher") {
    obsequious_ = student_.AddClass("obsequious").value();
    john_ = student_.AddInstance(S("john"), obsequious_).value();
    incoherent_ = teacher_.AddClass("incoherent").value();
    jim_ = teacher_.AddInstance(S("jim"), incoherent_).value();
    EXPECT_TRUE(schema_.Append("who", &student_).ok());
    EXPECT_TRUE(schema_.Append("whom", &teacher_).ok());
  }

  Hierarchy student_, teacher_;
  Schema schema_;
  NodeId obsequious_, john_, incoherent_, jim_;
};

TEST_F(ItemTest, SubsumptionIsComponentwise) {
  Item general{student_.root(), teacher_.root()};
  Item mid{obsequious_, teacher_.root()};
  Item specific{john_, jim_};
  EXPECT_TRUE(ItemSubsumes(schema_, general, mid));
  EXPECT_TRUE(ItemSubsumes(schema_, mid, specific));
  EXPECT_TRUE(ItemSubsumes(schema_, general, specific));
  EXPECT_FALSE(ItemSubsumes(schema_, mid, general));
  EXPECT_TRUE(ItemSubsumes(schema_, specific, specific));  // reflexive
}

TEST_F(ItemTest, ProductGraphEdgesOfFig2) {
  // (student, teacher) covers (obsequious, teacher) and
  // (student, incoherent) but neither of those covers the other.
  Item st{student_.root(), teacher_.root()};
  Item ot{obsequious_, teacher_.root()};
  Item si{student_.root(), incoherent_};
  Item oi{obsequious_, incoherent_};
  EXPECT_TRUE(ItemStrictlySubsumes(schema_, st, ot));
  EXPECT_TRUE(ItemStrictlySubsumes(schema_, st, si));
  EXPECT_FALSE(ItemComparable(schema_, ot, si));
  EXPECT_TRUE(ItemStrictlySubsumes(schema_, ot, oi));
  EXPECT_TRUE(ItemStrictlySubsumes(schema_, si, oi));
}

TEST_F(ItemTest, StrictSubsumptionExcludesEquality) {
  Item a{obsequious_, incoherent_};
  EXPECT_FALSE(ItemStrictlySubsumes(schema_, a, a));
}

TEST_F(ItemTest, MeetComponentwise) {
  Item ot{obsequious_, teacher_.root()};
  Item si{student_.root(), incoherent_};
  EXPECT_EQ(ItemMeet(schema_, ot, si), (Item{obsequious_, incoherent_}));
  // Incomparable components yield no meet.
  NodeId other = student_.AddClass("other").value();
  Item o1{other, teacher_.root()};
  Item o2{obsequious_, teacher_.root()};
  EXPECT_TRUE(ItemMeet(schema_, o1, o2).empty());
}

TEST_F(ItemTest, Atomicity) {
  EXPECT_TRUE(ItemIsAtomic(schema_, {john_, jim_}));
  EXPECT_FALSE(ItemIsAtomic(schema_, {obsequious_, jim_}));
}

TEST_F(ItemTest, ExtensionSizeIsProductOfMemberCounts) {
  student_.AddInstance(S("mary"), obsequious_).value();
  EXPECT_EQ(ItemExtensionSize(schema_, {obsequious_, incoherent_}), 2u);
  EXPECT_EQ(ItemExtensionSize(schema_, {john_, jim_}), 1u);
  NodeId empty = student_.AddClass("empty").value();
  EXPECT_EQ(ItemExtensionSize(schema_, {empty, jim_}), 0u);
}

TEST_F(ItemTest, MaximalCommonDescendantsComparable) {
  Item st{student_.root(), teacher_.root()};
  Item oi{obsequious_, incoherent_};
  std::vector<Item> mcd = ItemMaximalCommonDescendants(schema_, st, oi);
  ASSERT_EQ(mcd.size(), 1u);
  EXPECT_EQ(mcd[0], oi);
}

TEST_F(ItemTest, MaximalCommonDescendantsCrossPair) {
  Item ot{obsequious_, teacher_.root()};
  Item si{student_.root(), incoherent_};
  std::vector<Item> mcd = ItemMaximalCommonDescendants(schema_, ot, si);
  ASSERT_EQ(mcd.size(), 1u);
  EXPECT_EQ(mcd[0], (Item{obsequious_, incoherent_}));
}

TEST_F(ItemTest, MaximalCommonDescendantsDisjoint) {
  NodeId lazy = student_.AddClass("lazy").value();
  Item a{lazy, teacher_.root()};
  Item b{obsequious_, teacher_.root()};
  EXPECT_TRUE(ItemMaximalCommonDescendants(schema_, a, b).empty());
}

TEST_F(ItemTest, ToStringUsesNodeNames) {
  EXPECT_EQ(ItemToString(schema_, {obsequious_, jim_}), "(obsequious, jim)");
}

TEST_F(ItemTest, HashEqualItemsEqualHashes) {
  ItemHash hash;
  EXPECT_EQ(hash({john_, jim_}), hash({john_, jim_}));
  // Order-sensitive (the components are raw node ids, so pick distinct
  // values to make the swap observable).
  EXPECT_NE(hash({1, 2}), hash({2, 1}));
  EXPECT_NE(hash({1}), hash({1, 1}));
}

TEST_F(ItemTest, CloseUnderMcdAddsResolutionSites) {
  std::vector<Item> items{{obsequious_, teacher_.root()},
                          {student_.root(), incoherent_}};
  ASSERT_TRUE(CloseUnderMaximalCommonDescendants(schema_, items).ok());
  EXPECT_EQ(items.size(), 3u);
  EXPECT_NE(std::find(items.begin(), items.end(),
                      (Item{obsequious_, incoherent_})),
            items.end());
}

TEST_F(ItemTest, CloseUnderMcdDeduplicates) {
  std::vector<Item> items{{john_, jim_}, {john_, jim_}};
  ASSERT_TRUE(CloseUnderMaximalCommonDescendants(schema_, items).ok());
  EXPECT_EQ(items.size(), 1u);
}

TEST_F(ItemTest, CloseUnderMcdHonoursCap) {
  std::vector<Item> items{{obsequious_, teacher_.root()},
                          {student_.root(), incoherent_}};
  Status s = CloseUnderMaximalCommonDescendants(schema_, items, 2);
  EXPECT_TRUE(s.IsResourceExhausted());
}

TEST_F(ItemTest, TruthHelpers) {
  EXPECT_STREQ(TruthToString(Truth::kPositive), "+");
  EXPECT_STREQ(TruthToString(Truth::kNegative), "-");
  EXPECT_EQ(Negate(Truth::kPositive), Truth::kNegative);
  EXPECT_EQ(Negate(Truth::kNegative), Truth::kPositive);
}

}  // namespace
}  // namespace hirel

#include "algebra/join.h"

#include <gtest/gtest.h>

#include "algebra/project.h"
#include "core/explicate.h"
#include "flat/flat_ops.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::ElephantFixture;
using testing::FlyingFixture;

void ExpectJoinMatchesFlat(const HierarchicalRelation& left,
                           const HierarchicalRelation& right,
                           const std::vector<std::pair<size_t, size_t>>& on) {
  HierarchicalRelation joined = JoinOn(left, right, on).value();
  std::vector<Item> hierarchical = Extension(joined).value();

  FlatRelation lf = FlatRelation::FromRows("l", left.schema(),
                                           Extension(left).value())
                        .value();
  FlatRelation rf = FlatRelation::FromRows("r", right.schema(),
                                           Extension(right).value())
                        .value();
  FlatRelation expected = FlatJoinOn(lf, rf, on).value();
  EXPECT_EQ(hierarchical, expected.Rows());
}

TEST(JoinTest, Fig11bColorJoinEnclosure) {
  ElephantFixture f;
  HierarchicalRelation joined =
      NaturalJoin(*f.colors, *f.enclosure).value();
  // Result schema: animal, color, sqft.
  ASSERT_EQ(joined.schema().size(), 3u);
  EXPECT_EQ(joined.schema().name(0), "animal");
  EXPECT_EQ(joined.schema().name(1), "color");
  EXPECT_EQ(joined.schema().name(2), "sqft");

  std::vector<Item> extension = Extension(joined).value();
  // clyde: dappled @ 3000 (royal inherits elephant's 3000).
  // appu: white @ 2000 (indian overrides to 2000).
  std::vector<Item> expected{{f.clyde, f.dappled, f.sz3000},
                             {f.appu, f.white, f.sz2000}};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(extension, expected);

  ExpectJoinMatchesFlat(*f.colors, *f.enclosure, {{0, 0}});
}

TEST(JoinTest, Fig11cProjectionBackLosesNothing) {
  ElephantFixture f;
  // "Fig. 11 shows the join of two relations followed by a projection back
  // on one of the original relations. Notice that there is no loss of
  // information in the process."
  HierarchicalRelation joined =
      NaturalJoin(*f.colors, *f.enclosure).value();
  HierarchicalRelation back =
      Project(joined, std::vector<std::string>{"animal", "color"}).value();
  EXPECT_EQ(Extension(back).value(), Extension(*f.colors).value());
}

TEST(JoinTest, SingleAttributeJoinIsIntersection) {
  FlyingFixture f;
  HierarchicalRelation* small =
      f.db.CreateRelation("small", {{"who", "animal"}}).value();
  ASSERT_TRUE(small->Insert({f.penguin}, Truth::kPositive).ok());
  ExpectJoinMatchesFlat(*f.flies, *small, {{0, 0}});
}

TEST(JoinTest, OverlappingIncomparableClassesMeet) {
  // R: A+, S: B+, with A,B incomparable but overlapping: the join must
  // cover the overlap (via maximal common descendants).
  Database db;
  Hierarchy* h = db.CreateHierarchy("d").value();
  NodeId a = h->AddClass("a").value();
  NodeId b = h->AddClass("b").value();
  NodeId m = h->AddClass("m", a).value();
  ASSERT_TRUE(h->AddEdge(b, m).ok());
  NodeId x = h->AddInstance(Value::String("x"), m).value();
  HierarchicalRelation* r = db.CreateRelation("r", {{"v", "d"}}).value();
  HierarchicalRelation* s = db.CreateRelation("s", {{"v", "d"}}).value();
  ASSERT_TRUE(r->Insert({a}, Truth::kPositive).ok());
  ASSERT_TRUE(s->Insert({b}, Truth::kPositive).ok());

  HierarchicalRelation joined = JoinOn(*r, *s, {{0, 0}}).value();
  EXPECT_EQ(Extension(joined).value(), (std::vector<Item>{{x}}));
  ExpectJoinMatchesFlat(*r, *s, {{0, 0}});
}

TEST(JoinTest, CartesianProductCombinesTruths) {
  FlyingFixture f;
  HierarchicalRelation* tiny =
      f.db.CreateRelation("tiny", {{"other", "animal"}}).value();
  ASSERT_TRUE(tiny->Insert({f.tweety}, Truth::kPositive).ok());
  HierarchicalRelation product = CartesianProduct(*f.flies, *tiny).value();
  EXPECT_EQ(product.schema().size(), 2u);
  std::vector<Item> extension = Extension(product).value();
  // ext(flies) x {tweety}.
  std::vector<Item> expected{{f.tweety, f.tweety},
                             {f.pamela, f.tweety},
                             {f.patricia, f.tweety},
                             {f.peter, f.tweety}};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(extension, expected);
}

TEST(JoinTest, NameCollisionsAreQualified) {
  ElephantFixture f;
  HierarchicalRelation* other = f.db.CreateRelation(
      "other", {{"beast", "animal"}, {"color", "color"}}).value();
  ASSERT_TRUE(other->Insert({f.elephant, f.grey}, Truth::kPositive).ok());
  // Join on animal=beast: "color" appears on both sides.
  HierarchicalRelation joined =
      JoinOn(*f.colors, *other, {{0, 0}}).value();
  ASSERT_EQ(joined.schema().size(), 3u);
  EXPECT_EQ(joined.schema().name(2), "other.color");
}

TEST(JoinTest, MismatchedHierarchiesRejected) {
  ElephantFixture f;
  EXPECT_TRUE(JoinOn(*f.colors, *f.enclosure, {{0, 1}}).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(JoinOn(*f.colors, *f.enclosure, {{9, 0}}).status()
                  .IsInvalidArgument());
}

TEST(JoinTest, NaturalJoinRejectsHierarchyMismatchOnSharedName) {
  Database db;
  Hierarchy* h1 = db.CreateHierarchy("d1").value();
  Hierarchy* h2 = db.CreateHierarchy("d2").value();
  (void)h1;
  (void)h2;
  HierarchicalRelation* r = db.CreateRelation("r", {{"v", "d1"}}).value();
  HierarchicalRelation* s = db.CreateRelation("s", {{"v", "d2"}}).value();
  EXPECT_TRUE(NaturalJoin(*r, *s).status().IsInvalidArgument());
}

TEST(JoinTest, DisjointJoinValuesProduceEmptyResult) {
  Database db;
  Hierarchy* h = db.CreateHierarchy("d").value();
  NodeId a = h->AddClass("a").value();
  NodeId b = h->AddClass("b").value();
  HierarchicalRelation* r = db.CreateRelation("r", {{"v", "d"}}).value();
  HierarchicalRelation* s = db.CreateRelation("s", {{"v", "d"}}).value();
  ASSERT_TRUE(r->Insert({a}, Truth::kPositive).ok());
  ASSERT_TRUE(s->Insert({b}, Truth::kPositive).ok());
  HierarchicalRelation joined = JoinOn(*r, *s, {{0, 0}}).value();
  EXPECT_TRUE(Extension(joined).value().empty());
}

TEST(JoinTest, OverflowReportsBothRelationsAndLimit) {
  Database db;
  Hierarchy* h = db.CreateHierarchy("d").value();
  NodeId c = h->AddClass("c").value();
  std::vector<NodeId> atoms;
  for (int i = 0; i < 8; ++i) {
    atoms.push_back(h->AddInstance(Value::Int(i), c).value());
  }
  HierarchicalRelation* r = db.CreateRelation("r", {{"v", "d"}}).value();
  HierarchicalRelation* s = db.CreateRelation("s", {{"v", "d"}}).value();
  for (NodeId a : atoms) {
    ASSERT_TRUE(r->Insert({a}, Truth::kPositive).ok());
    ASSERT_TRUE(s->Insert({a}, Truth::kPositive).ok());
  }
  JoinOptions options;
  options.max_items = 4;  // 8 aligned pairs exceed this
  Status status = JoinOn(*r, *s, {{0, 0}}, options).status();
  ASSERT_TRUE(status.IsResourceExhausted()) << status;
  // The message must identify both inputs and the limit so an HQL user can
  // tell which join overflowed.
  EXPECT_NE(status.message().find("'r' (8 tuples)"), std::string::npos)
      << status;
  EXPECT_NE(status.message().find("'s' (8 tuples)"), std::string::npos)
      << status;
  EXPECT_NE(status.message().find("limit of 4"), std::string::npos) << status;
}

TEST(JoinTest, MatchesFlatOnRandomDatabases) {
  for (uint64_t seed = 500; seed < 515; ++seed) {
    testing::RandomFixtureOptions options;
    options.num_classes = 6;
    options.num_instances = 8;
    options.num_tuples = 5;
    testing::RandomDatabase left(seed, options);
    testing::RandomDatabase right(seed + 10000, options);
    // Rebuild the right relation over the left database's hierarchy so the
    // join attribute shares a domain: join each relation with itself too.
    ExpectJoinMatchesFlat(*left.relation(), *left.relation(), {{0, 0}});
    ExpectJoinMatchesFlat(*right.relation(), *right.relation(), {{0, 0}});
  }
}

}  // namespace
}  // namespace hirel

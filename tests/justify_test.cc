#include "algebra/justify.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::ElephantFixture;
using testing::FlyingFixture;
using testing::RespectsFixture;

TEST(JustifyTest, Fig9ClydeGreySelectionJustification) {
  ElephantFixture f;
  // "Is Clyde grey?" — no: the royal-elephant cancellation applies.
  Justification j = Explain(*f.colors, {f.clyde, f.grey}).value();
  EXPECT_FALSE(j.conflict);
  EXPECT_EQ(j.verdict, Truth::kNegative);
  // Applicable: (elephant, grey)+ and (royal, grey)-; binder: the latter.
  ASSERT_EQ(j.applicable.size(), 2u);
  ASSERT_EQ(j.binders.size(), 1u);
  EXPECT_EQ(f.colors->tuple(j.binders[0]).item, (Item{f.royal, f.grey}));
  // Most specific first in the applicable list.
  EXPECT_EQ(f.colors->tuple(j.applicable[0]).item, (Item{f.royal, f.grey}));
  EXPECT_EQ(f.colors->tuple(j.applicable[1]).item,
            (Item{f.elephant, f.grey}));
}

TEST(JustifyTest, PositiveVerdictWithChain) {
  FlyingFixture f;
  Justification j = Explain(*f.flies, {f.patricia}).value();
  EXPECT_EQ(j.verdict, Truth::kPositive);
  EXPECT_EQ(j.applicable.size(), 3u);
  ASSERT_EQ(j.binders.size(), 1u);
  EXPECT_EQ(f.flies->tuple(j.binders[0]).item, (Item{f.afp}));
}

TEST(JustifyTest, ClosedWorldJustification) {
  FlyingFixture f;
  NodeId rex = f.animal->AddInstance(Value::String("rex")).value();
  Justification j = Explain(*f.flies, {rex}).value();
  EXPECT_EQ(j.verdict, Truth::kNegative);
  EXPECT_TRUE(j.applicable.empty());
  EXPECT_TRUE(j.binders.empty());
  std::string s = JustificationToString(*f.flies, j);
  EXPECT_NE(s.find("closed world"), std::string::npos);
}

TEST(JustifyTest, ConflictSurfacesInJustification) {
  RespectsFixture f(/*with_resolver=*/false);
  Justification j =
      Explain(*f.respects, {f.obsequious, f.incoherent}).value();
  EXPECT_TRUE(j.conflict);
  EXPECT_EQ(j.binders.size(), 2u);
  std::string s = JustificationToString(*f.respects, j);
  EXPECT_NE(s.find("CONFLICT"), std::string::npos);
}

TEST(JustifyTest, ToStringMarksBinders) {
  FlyingFixture f;
  Justification j = Explain(*f.flies, {f.paul}).value();
  std::string s = JustificationToString(*f.flies, j);
  EXPECT_NE(s.find("binds> - (penguin)"), std::string::npos);
  EXPECT_NE(s.find("+ (bird)"), std::string::npos);
}

TEST(JustifyTest, ArityMismatch) {
  FlyingFixture f;
  EXPECT_TRUE(Explain(*f.flies, {f.bird, f.bird}).status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace hirel

#include "hql/lexer.h"

#include <gtest/gtest.h>

namespace hirel {
namespace {

TEST(LexerTest, EmptyInputYieldsEnd) {
  std::vector<Token> tokens = Tokenize("").value();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitiveAndNormalised) {
  std::vector<Token> tokens = Tokenize("select Select SELECT").value();
  ASSERT_EQ(tokens.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kKeyword);
    EXPECT_EQ(tokens[i].text, "SELECT");
  }
}

TEST(LexerTest, IdentifiersKeepCase) {
  std::vector<Token> tokens = Tokenize("Tweety flying_creatures _x9").value();
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "Tweety");
  EXPECT_EQ(tokens[1].text, "flying_creatures");
  EXPECT_EQ(tokens[2].text, "_x9");
}

TEST(LexerTest, NumbersIntAndFloat) {
  std::vector<Token> tokens = Tokenize("3000 -12 2.5 -0.25").value();
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[0].int_value, 3000);
  EXPECT_EQ(tokens[1].int_value, -12);
  EXPECT_EQ(tokens[2].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 2.5);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, -0.25);
}

TEST(LexerTest, StringsBothQuoteStyles) {
  std::vector<Token> tokens = Tokenize("'tweety' \"big bird\"").value();
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "tweety");
  EXPECT_EQ(tokens[1].text, "big bird");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_TRUE(Tokenize("'oops").status().IsParseError());
}

TEST(LexerTest, Punctuation) {
  std::vector<Token> tokens = Tokenize("( ) , ; : = *").value();
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].type, TokenType::kLeftParen);
  EXPECT_EQ(tokens[1].type, TokenType::kRightParen);
  EXPECT_EQ(tokens[2].type, TokenType::kComma);
  EXPECT_EQ(tokens[3].type, TokenType::kSemicolon);
  EXPECT_EQ(tokens[4].type, TokenType::kColon);
  EXPECT_EQ(tokens[5].type, TokenType::kEquals);
  EXPECT_EQ(tokens[6].type, TokenType::kStar);
}

TEST(LexerTest, CommentsSkippedToEndOfLine) {
  std::vector<Token> tokens =
      Tokenize("assert -- this is a comment\n flies").value();
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "ASSERT");
  EXPECT_EQ(tokens[1].text, "flies");
}

TEST(LexerTest, LineAndColumnTracking) {
  std::vector<Token> tokens = Tokenize("a\n  bb\ncc dd").value();
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[0].column, 1u);
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[1].column, 3u);
  EXPECT_EQ(tokens[2].line, 3u);
  EXPECT_EQ(tokens[3].line, 3u);
  EXPECT_EQ(tokens[3].column, 4u);
}

TEST(LexerTest, UnexpectedCharacterReportsPosition) {
  Status s = Tokenize("a @ b").status();
  ASSERT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("1:3"), std::string::npos);
}

TEST(LexerTest, ReservedWordPredicate) {
  EXPECT_TRUE(IsReservedWord("select"));
  EXPECT_TRUE(IsReservedWord("ALL"));
  EXPECT_TRUE(IsReservedWord("Deny"));
  EXPECT_FALSE(IsReservedWord("tweety"));
}

}  // namespace
}  // namespace hirel

#include "flat/membership_baseline.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::FlyingFixture;

TEST(MembershipTest, MaterialisesDirectEdges) {
  FlyingFixture f;
  MembershipTable isa(*f.animal);
  // One isa row per subsumption edge.
  EXPECT_EQ(isa.size(), f.animal->dag().num_edges());
  EXPECT_GT(isa.ApproxBytes(), 0u);
}

TEST(MembershipTest, MembersOfMatchesAtomsUnder) {
  FlyingFixture f;
  MembershipTable isa(*f.animal);
  for (NodeId cls : f.animal->Classes()) {
    std::vector<NodeId> via_joins = isa.MembersOf(cls);
    std::sort(via_joins.begin(), via_joins.end());
    EXPECT_EQ(via_joins, f.animal->AtomsUnder(cls))
        << f.animal->NodeName(cls);
  }
}

TEST(MembershipTest, IsMemberMatchesSubsumption) {
  FlyingFixture f;
  MembershipTable isa(*f.animal);
  for (NodeId cls : f.animal->Classes()) {
    for (NodeId inst : f.animal->Instances()) {
      EXPECT_EQ(isa.IsMember(inst, cls), f.animal->Subsumes(cls, inst))
          << f.animal->NodeName(cls) << " / " << f.animal->NodeName(inst);
    }
  }
}

TEST(MembershipTest, QueryStatsCountJoinPasses) {
  FlyingFixture f;
  MembershipTable isa(*f.animal);
  MembershipQueryStats stats;
  isa.MembersOf(f.animal->root(), &stats);
  // The hierarchy is 4 levels deep (animal > bird > penguin > galapagos >
  // instances): at least 4 join passes, and every isa row scanned at least
  // once.
  EXPECT_GE(stats.joins, 4u);
  EXPECT_GE(stats.tuples_scanned, isa.size());
}

TEST(MembershipTest, DeeperClassesNeedFewerJoins) {
  // The footnote's "repeated joins" degradation is depth-proportional.
  Database db;
  Hierarchy* h = testing::BuildTreeHierarchy(db, "deep", /*depth=*/6,
                                             /*fanout=*/1,
                                             /*instances_per_leaf=*/1);
  MembershipTable isa(*h);
  MembershipQueryStats from_root, from_leaf_class;
  isa.MembersOf(h->root(), &from_root);
  // The deepest class.
  NodeId deepest = h->root();
  while (!h->Children(deepest).empty() &&
         h->is_class(h->Children(deepest)[0])) {
    deepest = h->Children(deepest)[0];
  }
  isa.MembersOf(deepest, &from_leaf_class);
  EXPECT_GT(from_root.joins, from_leaf_class.joins);
}

TEST(MembershipTest, IsMemberShortCircuits) {
  FlyingFixture f;
  MembershipTable isa(*f.animal);
  MembershipQueryStats all, hit;
  isa.MembersOf(f.animal->root(), &all);
  isa.IsMember(f.tweety, f.bird, &hit);
  EXPECT_LE(hit.tuples_scanned, all.tuples_scanned);
  EXPECT_TRUE(isa.IsMember(f.tweety, f.tweety));
  EXPECT_FALSE(isa.IsMember(f.tweety, f.penguin));
}

TEST(MembershipTest, MultipleInheritanceNotDoubleCounted) {
  FlyingFixture f;
  MembershipTable isa(*f.animal);
  std::vector<NodeId> penguins = isa.MembersOf(f.penguin);
  // patricia reachable via both galapagos and afp: once only.
  EXPECT_EQ(std::count(penguins.begin(), penguins.end(), f.patricia), 1);
}

}  // namespace
}  // namespace hirel

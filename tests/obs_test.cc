// Observability: MetricsRegistry semantics, histogram bucketing, the
// disabled fast path, trace span trees, the structured event log, the
// exporters (Chrome trace JSON, Prometheus text), and the executor-facing
// surface (EXPLAIN ANALYZE, SHOW METRICS, SHOW TRACE, SHOW LOG, slow-query
// log, EXPORT TRACE, RESET METRICS).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/tuple_store.h"
#include "hql/executor.h"
#include "io/wal.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/wait.h"

namespace hirel {
namespace obs {
namespace {

TEST(MetricsRegistryTest, FindOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& c = reg.counter("queries");
  c.Add();
  c.Add(4);
  EXPECT_EQ(reg.counter("queries").value(), 5u);
  EXPECT_EQ(&reg.counter("queries"), &c);

  Gauge& g = reg.gauge("entries");
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(reg.gauge("entries").value(), 7);

  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistryTest, HandlesSurviveRegistryMove) {
  MetricsRegistry reg;
  Counter& c = reg.counter("moved");
  MetricsRegistry other = std::move(reg);
  c.Add(3);  // heap-allocated metric + heap-allocated enabled flag
  EXPECT_EQ(other.counter("moved").value(), 3u);
}

TEST(MetricsRegistryTest, HistogramBucketBoundaries) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  h.Record(0);        // bucket 0: < 1024 ns
  h.Record(1023);     // bucket 0
  h.Record(1024);     // bucket 1: < 2048 ns
  h.Record(1u << 20); // bucket 11: < 1024 << 11
  h.Record(uint64_t{1} << 60);  // overflow

  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.max_ns(), uint64_t{1} << 60);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(11), 1u);
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1u);

  EXPECT_EQ(Histogram::BucketBound(0), 1024u);
  EXPECT_EQ(Histogram::BucketBound(1), 2048u);
  EXPECT_EQ(Histogram::BucketBound(Histogram::kBuckets - 1), 0u);
}

TEST(MetricsRegistryTest, DisabledUpdatesAreNoOps) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h");

  reg.set_enabled(false);
  c.Add(5);
  g.Set(5);
  h.Record(5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);

  reg.set_enabled(true);
  c.Add(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsNames) {
  MetricsRegistry reg;
  reg.counter("a").Add(7);
  reg.histogram("b").Record(100);
  reg.Reset();
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.counter("a").value(), 0u);
  EXPECT_EQ(reg.histogram("b").count(), 0u);
}

TEST(MetricsRegistryTest, RenderAndJsonShapes) {
  MetricsRegistry reg;
  EXPECT_NE(reg.Render().find("(none)"), std::string::npos);

  reg.counter("queries").Add(2);
  reg.gauge("depth").Set(-1);
  reg.histogram("lat").Record(3000);
  std::string text = reg.Render();
  EXPECT_NE(text.find("queries"), std::string::npos);
  EXPECT_NE(text.find("depth"), std::string::npos);

  std::string json = reg.RenderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"queries\":2"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":-1"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(TraceTest, ScopesBuildNestedSpanTree) {
  Trace trace;
  EXPECT_TRUE(trace.empty());
  {
    Trace::Scope outer(&trace, "execute");
    outer.Note("rows", 42);
    { Trace::Scope inner(&trace, "plan"); }
  }
  { Trace::Scope other(&trace, "derive"); }

  ASSERT_EQ(trace.spans().size(), 2u);
  const TraceSpan& execute = *trace.spans()[0];
  EXPECT_EQ(execute.name, "execute");
  ASSERT_EQ(execute.notes.size(), 1u);
  EXPECT_EQ(execute.notes[0].first, "rows");
  EXPECT_EQ(execute.notes[0].second, 42u);
  ASSERT_EQ(execute.children.size(), 1u);
  EXPECT_EQ(execute.children[0]->name, "plan");
  EXPECT_EQ(trace.spans()[1]->name, "derive");

  std::string text = trace.Render();
  EXPECT_NE(text.find("execute"), std::string::npos);
  EXPECT_NE(text.find("rows=42"), std::string::npos);

  std::string json = trace.RenderJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"plan\""), std::string::npos);

  trace.Clear();
  EXPECT_TRUE(trace.empty());
  EXPECT_NE(trace.Render().find("(none)"), std::string::npos);
}

TEST(TraceTest, NullTraceScopesAreNoOps) {
  Trace::Scope scope(nullptr, "nothing");
  scope.Note("rows", 1);  // must not crash
}

// ---------------------------------------------------------------------------
// Shared JSON escaping (used by SHOW ... JSON, the log, and the exporters).

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(JsonEscape("plain text"), "plain text");
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab\rret"), "line\\nbreak\\ttab\\rret");
  EXPECT_EQ(JsonEscape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");

  std::string out;
  AppendJsonString(out, "k\"v");
  EXPECT_EQ(out, "\"k\\\"v\"");
}

// ---------------------------------------------------------------------------
// Histogram edges.

TEST(MetricsRegistryTest, HistogramEdgeValuesLandInExpectedBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("edges");

  // A value equal to a bucket's bound belongs to the next bucket: bounds
  // are exclusive upper limits.
  h.Record(Histogram::BucketBound(1) - 1);  // 2047 -> bucket 1
  h.Record(Histogram::BucketBound(1));      // 2048 -> bucket 2
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);

  // The last finite bucket and the first value past it (overflow).
  const size_t last_finite = Histogram::kBuckets - 2;
  const uint64_t top_bound = Histogram::BucketBound(last_finite);
  ASSERT_NE(top_bound, 0u);
  h.Record(top_bound - 1);
  h.Record(top_bound);
  EXPECT_EQ(h.bucket(last_finite), 1u);
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1u);

  // Bounds double from 1024; the +Inf bucket reports bound 0.
  for (size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketBound(i), uint64_t{1024} << i) << i;
  }
  EXPECT_EQ(Histogram::BucketBound(Histogram::kBuckets - 1), 0u);
}

TEST(MetricsRegistryTest, HistogramQuantilesFromKnownDistribution) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("q");
  EXPECT_EQ(h.QuantileNs(0.5), 0u);  // empty histogram

  // 90 samples in bucket 0 ([0, 1024)) and 10 at 100 µs (bucket 7,
  // [65536, 131072)): p50 and p90 land in the first bucket, p99 in the
  // slow tail, clamped to the observed max.
  for (int i = 0; i < 90; ++i) h.Record(500);
  for (int i = 0; i < 10; ++i) h.Record(100'000);
  EXPECT_LT(h.QuantileNs(0.5), 1024u);
  EXPECT_LE(h.QuantileNs(0.9), 1024u);  // rank 90 of 90 in bucket 0: at the bound
  EXPECT_GE(h.QuantileNs(0.99), 65536u);
  EXPECT_LE(h.QuantileNs(0.99), 100'000u);
  EXPECT_EQ(h.QuantileNs(1.0), h.QuantileNs(0.99));

  // Overflow-bucket samples resolve to the exact max.
  Histogram& over = reg.histogram("over");
  over.Record(uint64_t{1} << 40);
  EXPECT_EQ(over.QuantileNs(0.99), uint64_t{1} << 40);

  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"p50_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"p90_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metric help registry (Prometheus # HELP).

TEST(MetricHelpTest, ExactPrefixOverrideAndFallback) {
  // Exact names and dotted-prefix rules resolve to real text; unknown
  // names fall back to a generic description that still mentions them.
  EXPECT_EQ(MetricHelp("no.such.metric"), "engine metric no.such.metric");
  EXPECT_NE(MetricHelp("query.statements"),
            "engine metric query.statements");
  EXPECT_NE(MetricHelp("pool.thread3.busy_ms"),
            "engine metric pool.thread3.busy_ms");
  RegisterMetricHelp("test.custom.metric", "custom help text");
  EXPECT_EQ(MetricHelp("test.custom.metric"), "custom help text");
}

// ---------------------------------------------------------------------------
// Wait-event registry.

TEST(WaitRegistryTest, RecordAggregatesPerSiteAndClass) {
  WaitEventRegistry& reg = WaitEventRegistry::Global();
  WaitEventRegistry::Site& site =
      reg.RegisterSite("test.wait_a", WaitClass::kLatch);
  EXPECT_EQ(&reg.RegisterSite("test.wait_a", WaitClass::kLatch), &site);

  reg.Reset();
  const uint64_t attributed_before = reg.attributed_wait_ns();
  site.Record(0, 1500);
  site.Record(0, 3000);
  EXPECT_GE(reg.attributed_wait_ns() - attributed_before, 4500u);

  bool found = false;
  for (const WaitEventRegistry::SiteSnapshot& s : reg.Snapshot()) {
    if (s.name != "test.wait_a") continue;
    found = true;
    EXPECT_EQ(s.cls, WaitClass::kLatch);
    EXPECT_EQ(s.count, 2u);
    EXPECT_EQ(s.total_ns, 4500u);
    EXPECT_EQ(s.max_ns, 3000u);
    EXPECT_EQ(s.buckets[1], 1u);  // 1500 -> [1024, 2048)
    EXPECT_EQ(s.buckets[2], 1u);  // 3000 -> [2048, 4096)
  }
  EXPECT_TRUE(found);

  const auto per_class = reg.PerClass();
  EXPECT_GE(per_class[static_cast<size_t>(WaitClass::kLatch)].count, 2u);
  EXPECT_GE(per_class[static_cast<size_t>(WaitClass::kLatch)].total_ns,
            4500u);
}

TEST(WaitRegistryTest, DisabledScopedWaitRecordsNothing) {
  WaitEventRegistry& reg = WaitEventRegistry::Global();
  WaitEventRegistry::Site& site =
      reg.RegisterSite("test.wait_disabled", WaitClass::kLock);
  reg.set_enabled(false);
  { ScopedWait wait(site); }
  reg.set_enabled(true);
  for (const WaitEventRegistry::SiteSnapshot& s : reg.Snapshot()) {
    if (s.name == "test.wait_disabled") EXPECT_EQ(s.count, 0u);
  }
}

TEST(WaitRegistryTest, UnattributedSitesAggregateButDoNotAttribute) {
  WaitEventRegistry& reg = WaitEventRegistry::Global();
  WaitEventRegistry::Site& site = reg.RegisterSite(
      "test.wait_unattributed", WaitClass::kCpuQueue, /*attributed=*/false);
  const uint64_t before = reg.attributed_wait_ns();
  site.Record(0, 10'000);
  EXPECT_EQ(reg.attributed_wait_ns(), before);
  bool found = false;
  for (const WaitEventRegistry::SiteSnapshot& s : reg.Snapshot()) {
    if (s.name == "test.wait_unattributed") {
      found = true;
      EXPECT_GE(s.count, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(WaitRegistryTest, CaptureCollectsSpansOnSessionTrack) {
  WaitEventRegistry& reg = WaitEventRegistry::Global();
  WaitEventRegistry::Site& site =
      reg.RegisterSite("test.wait_capture", WaitClass::kIo);
  reg.StartCapture();
  site.Record(WaitNowNs(), 2000);
  std::vector<WaitEventRegistry::WaitSpan> spans = reg.StopCapture();
  bool found = false;
  for (const WaitEventRegistry::WaitSpan& s : spans) {
    if (std::string_view(s.site) != "test.wait_capture") continue;
    found = true;
    EXPECT_EQ(s.cls, WaitClass::kIo);
    EXPECT_EQ(s.track, 0u);  // never SetThreadTrack'd: session track
    EXPECT_EQ(s.dur_ns, 2000u);
  }
  EXPECT_TRUE(found);

  // Outside a capture window nothing is collected.
  site.Record(WaitNowNs(), 2000);
  EXPECT_TRUE(reg.StopCapture().empty());
}

TEST(WaitRegistryTest, TrackedLockUncontendedRecordsNothing) {
  WaitEventRegistry& reg = WaitEventRegistry::Global();
  WaitEventRegistry::Site& site =
      reg.RegisterSite("test.wait_tracked_lock", WaitClass::kLock);
  std::mutex m;
  { TrackedLock<std::mutex> lock(m, site); }
  std::shared_mutex sm;
  { TrackedSharedLock<std::shared_mutex> lock(sm, site); }
  for (const WaitEventRegistry::SiteSnapshot& s : reg.Snapshot()) {
    if (s.name == "test.wait_tracked_lock") EXPECT_EQ(s.count, 0u);
  }
}

// ---------------------------------------------------------------------------
// Telemetry sampler (manual Tick: deterministic, no thread, no sleeps).

TEST(TelemetrySamplerTest, ManualTickSamplesAndBoundsRings) {
  MetricsRegistry reg;
  Counter& c = reg.counter("t.count");
  reg.gauge("t.gauge").Set(7);
  reg.histogram("t.hist").Record(100);

  TelemetrySampler sampler(/*ring_capacity=*/3);
  sampler.SetRegistry(&reg);
  for (int i = 1; i <= 5; ++i) {
    c.Add(1);
    sampler.Tick();
  }
  EXPECT_EQ(sampler.ticks(), 5u);
  EXPECT_EQ(sampler.ring_capacity(), 3u);

  std::vector<TelemetrySampler::SeriesSnapshot> series = sampler.Snapshot();
  ASSERT_EQ(series.size(), 3u);  // sorted by name
  const TelemetrySampler::SeriesSnapshot& count = series[0];
  EXPECT_EQ(count.name, "t.count");
  EXPECT_EQ(count.kind, 'c');
  EXPECT_EQ(count.total_samples, 5u);
  ASSERT_EQ(count.samples.size(), 3u);  // oldest two evicted
  EXPECT_EQ(count.samples.front().seq, 3u);
  EXPECT_EQ(count.samples.front().value, 3u);
  EXPECT_EQ(count.samples.back().seq, 5u);
  EXPECT_EQ(count.samples.back().value, 5u);
  EXPECT_EQ(count.min, 1u);
  EXPECT_EQ(count.max, 5u);
  EXPECT_EQ(count.last, 5u);

  EXPECT_EQ(series[1].name, "t.gauge");
  EXPECT_EQ(series[1].kind, 'g');
  EXPECT_EQ(series[1].last, 7u);
  EXPECT_EQ(series[2].name, "t.hist");
  EXPECT_EQ(series[2].kind, 'h');
  EXPECT_EQ(series[2].last, 1u);  // histograms sample their count

  sampler.Clear();
  EXPECT_EQ(sampler.ticks(), 0u);
  EXPECT_TRUE(sampler.Snapshot().empty());
}

TEST(TelemetrySamplerTest, IntervalClampAndStartStopIdempotent) {
  TelemetrySampler sampler;
  EXPECT_EQ(sampler.interval_ms(), 100u);  // default
  sampler.SetIntervalMs(0);
  EXPECT_EQ(sampler.interval_ms(), 1u);
  sampler.SetIntervalMs(10'000'000);
  EXPECT_EQ(sampler.interval_ms(), 3'600'000u);

  MetricsRegistry reg;
  reg.counter("x").Add(1);
  sampler.SetRegistry(&reg);
  sampler.SetIntervalMs(1);
  EXPECT_FALSE(sampler.running());
  sampler.Start();
  EXPECT_TRUE(sampler.running());
  sampler.Start();  // idempotent
  EXPECT_TRUE(sampler.running());
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  sampler.Stop();  // idempotent

  // A detached sampler ignores ticks entirely: no samples, no count.
  sampler.SetRegistry(nullptr);
  sampler.Clear();
  sampler.Tick();
  EXPECT_EQ(sampler.ticks(), 0u);
  EXPECT_TRUE(sampler.Snapshot().empty());
}

// ---------------------------------------------------------------------------
// Structured event log.

TEST(LoggerTest, LevelGatesEventsAndRingRecordsThem) {
  Logger logger(LogLevel::kWarn, /*ring_capacity=*/8);
  EXPECT_FALSE(logger.ShouldLog(LogLevel::kInfo));
  EXPECT_TRUE(logger.ShouldLog(LogLevel::kWarn));

  logger.Log(LogLevel::kInfo, "wal", "append");  // filtered out
  logger.Log(LogLevel::kWarn, "wal", "checkpoint", {{"records", "12"}});
  std::vector<LogEvent> events = logger.ring().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].component, "wal");
  EXPECT_EQ(events[0].event, "checkpoint");

  std::string text = events[0].ToText();
  EXPECT_NE(text.find("warn"), std::string::npos);
  EXPECT_NE(text.find("wal.checkpoint"), std::string::npos);
  EXPECT_NE(text.find("records=12"), std::string::npos);

  std::string json = events[0].ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"component\":\"wal\""), std::string::npos);
  EXPECT_NE(json.find("\"event\":\"checkpoint\""), std::string::npos);
  EXPECT_NE(json.find("\"records\":\"12\""), std::string::npos);
}

TEST(LoggerTest, RingDropsOldestAtCapacity) {
  Logger logger(LogLevel::kInfo, /*ring_capacity=*/2);
  logger.Log(LogLevel::kInfo, "t", "first");
  logger.Log(LogLevel::kInfo, "t", "second");
  logger.Log(LogLevel::kInfo, "t", "third");

  EXPECT_EQ(logger.ring().size(), 2u);
  EXPECT_EQ(logger.ring().dropped(), 1u);
  std::vector<LogEvent> events = logger.ring().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].event, "second");
  EXPECT_EQ(events[1].event, "third");
  EXPECT_LT(events[0].seq, events[1].seq);

  logger.ring().Clear();
  EXPECT_EQ(logger.ring().size(), 0u);
}

TEST(LoggerTest, ParseLogLevelRoundTrips) {
  LogLevel level;
  ASSERT_TRUE(ParseLogLevel("DEBUG", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  ASSERT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("chatty", &level));
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "warn");
}

// ---------------------------------------------------------------------------
// Exporters.

TEST(ExportTest, ChromeTraceJsonRendersSpansAndPoolTracks) {
  Trace trace;
  {
    Trace::Scope outer(&trace, "execute");
    outer.Note("rows", 7);
    { Trace::Scope inner(&trace, "plan"); }
  }
  std::vector<ThreadPool::ChunkSpan> pool;
  pool.push_back({0, trace.epoch_ns() + 1000, 500, 3, 1});
  pool.push_back({2, trace.epoch_ns() + 2000, 400, 4, 1});

  std::string json = ChromeTraceJson(trace, pool);
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"execute\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\":7"), std::string::npos);
  EXPECT_NE(json.find("pool caller"), std::string::npos);
  EXPECT_NE(json.find("pool worker 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"chunk\""), std::string::npos);
}

TEST(ExportTest, PrometheusTextExposition) {
  MetricsRegistry reg;
  reg.counter("query.statements").Add(3);
  reg.gauge("pool.threads").Set(2);
  reg.histogram("query.latency_ns").Record(1500);

  std::string text = PrometheusText(reg);
  EXPECT_NE(text.find("# TYPE hirel_query_statements counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("hirel_query_statements{name=\"query.statements\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE hirel_pool_threads gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hirel_query_latency_ns histogram\n"),
            std::string::npos);
  // 1500 ns lands in [1024, 2048): cumulative buckets step 0 -> 1.
  EXPECT_NE(text.find("le=\"1024\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("le=\"2048\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 1\n"), std::string::npos);
  EXPECT_NE(
      text.find("hirel_query_latency_ns_sum{name=\"query.latency_ns\"} 1500\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("hirel_query_latency_ns_count{name=\"query.latency_ns\"} 1\n"),
      std::string::npos);
}

TEST(ExportTest, PrometheusHelpLinePrecedesEveryTypeLine) {
  MetricsRegistry reg;
  reg.counter("query.statements").Add(3);
  reg.gauge("pool.queue_depth").Set(1);
  reg.histogram("wal.flush_ns").Record(10);
  RegisterMetricHelp("wal.flush_ns", "time spent in WAL flushes");

  std::string text = PrometheusText(reg);
  // Every # TYPE line is immediately preceded by a # HELP line for the
  // same exported metric name.
  std::istringstream lines(text);
  std::string prev, line;
  size_t types = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      ++types;
      std::string metric = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_EQ(prev.rfind("# HELP " + metric + " ", 0), 0u) << line;
    }
    prev = line;
  }
  EXPECT_EQ(types, 3u);
  EXPECT_NE(text.find("# HELP hirel_wal_flush_ns time spent in WAL flushes"),
            std::string::npos);
}

TEST(ExportTest, PrometheusEscapesRawNameLabel) {
  MetricsRegistry reg;
  reg.counter("weird\"name\\with\nstuff").Add(1);
  std::string text = PrometheusText(reg);
  EXPECT_NE(text.find("# TYPE hirel_weird_name_with_stuff counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("name=\"weird\\\"name\\\\with\\nstuff\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Executor surface.

constexpr const char* kFlyingScript = R"(
CREATE HIERARCHY animal;
CREATE CLASS bird IN animal;
CREATE CLASS penguin IN animal UNDER bird;
CREATE CLASS afp IN animal UNDER penguin;
CREATE INSTANCE peter IN animal UNDER afp;
CREATE RELATION flies (who: animal);
ASSERT flies(ALL bird);
DENY flies(ALL penguin);
ASSERT flies(ALL afp);
)";

TEST(ExecutorObsTest, DeterministicCountersAfterScript) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  MetricsRegistry& m = exec.database().metrics();
  EXPECT_EQ(m.counter("query.statements").value(), 9u);
  EXPECT_EQ(m.counter("facts.asserted").value(), 2u);
  EXPECT_EQ(m.counter("facts.denied").value(), 1u);
  EXPECT_EQ(m.counter("query.errors").value(), 0u);
}

TEST(ExecutorObsTest, ShowMetricsIsNonzeroAndJsonWellFormed) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_TRUE(exec.Execute("SELECT * FROM flies WHERE who = penguin;").ok());

  std::string text = exec.Execute("SHOW METRICS;").value();
  EXPECT_NE(text.find("query.statements"), std::string::npos);
  EXPECT_NE(text.find("plan.nodes_executed"), std::string::npos);
  EXPECT_NE(text.find("subsumption_cache."), std::string::npos);
  EXPECT_EQ(text.find("(none)"), std::string::npos);

  std::string json = exec.Execute("SHOW METRICS JSON;").value();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"query.statements\""), std::string::npos);
}

TEST(ExecutorObsTest, ExplainAnalyzeReportsActuals) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  std::string out =
      exec.Execute("EXPLAIN ANALYZE SELECT * FROM flies WHERE who = penguin;")
          .value();
  EXPECT_NE(out.find("analyzed plan for"), std::string::npos);
  EXPECT_NE(out.find("actual rows="), std::string::npos);
  EXPECT_NE(out.find("probes="), std::string::npos);
  EXPECT_NE(out.find("totals: nodes="), std::string::npos);
}

TEST(ExecutorObsTest, ShowTraceReportsPreviousQuery) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_TRUE(exec.Execute("SELECT * FROM flies;").ok());

  std::string trace = exec.Execute("SHOW TRACE;").value();
  EXPECT_NE(trace.find("select"), std::string::npos);
  EXPECT_NE(trace.find("plan"), std::string::npos);
  EXPECT_NE(trace.find("execute"), std::string::npos);

  // SHOW TRACE itself is not trace-worthy: asking again reports the same
  // query, not the SHOW TRACE statement.
  std::string again = exec.Execute("SHOW TRACE;").value();
  EXPECT_NE(again.find("select"), std::string::npos);

  std::string json = exec.Execute("SHOW TRACE JSON;").value();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"execute\""), std::string::npos);
}

TEST(ExecutorObsTest, DeriveFixpointRoundsAreTraced) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(R"(
CREATE HIERARCHY h;
CREATE INSTANCE a IN h;
CREATE INSTANCE b IN h;
CREATE INSTANCE c IN h;
CREATE RELATION edge (src: h, dst: h);
CREATE RELATION path (src: h, dst: h);
ASSERT edge(a, b);
ASSERT edge(b, c);
RULE 'path(?x, ?y) :- edge(?x, ?y).';
RULE 'path(?x, ?z) :- path(?x, ?y), edge(?y, ?z).';
DERIVE;
)")
                  .ok());
  std::string trace = exec.Execute("SHOW TRACE;").value();
  EXPECT_NE(trace.find("derive fixpoint"), std::string::npos);
  EXPECT_NE(trace.find("derive round"), std::string::npos);
  EXPECT_GT(exec.database().metrics().counter("derive.facts_derived").value(),
            0u);
}

TEST(ExecutorObsTest, WalCountersTrackAppendsAndReplay) {
  std::string dir = std::string(::testing::TempDir()) + "/obs_wal_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  {
    auto ldb = LoggedDatabase::Open(dir).value();
    ASSERT_TRUE(ldb->CreateHierarchy("h").ok());
    ASSERT_TRUE(ldb->CreateRelation("r", {{"x", "h"}}).ok());
    MetricsRegistry& m = ldb->db().metrics();
    EXPECT_EQ(m.counter("wal.records_appended").value(), 2u);
    EXPECT_GT(m.counter("wal.bytes_appended").value(), 0u);
    EXPECT_EQ(m.counter("wal.flushes").value(), 2u);
  }
  {
    auto ldb = LoggedDatabase::Open(dir).value();
    EXPECT_EQ(ldb->db().metrics().counter("wal.records_replayed").value(), 2u);
  }
  std::filesystem::remove_all(dir);
}

TEST(ExecutorObsTest, ResetMetricsZeroesEverything) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_GT(exec.database().metrics().counter("facts.asserted").value(), 0u);

  std::string out = exec.Execute("RESET METRICS;").value();
  EXPECT_NE(out.find("metrics reset"), std::string::npos);
  EXPECT_EQ(exec.database().metrics().counter("facts.asserted").value(), 0u);
}

TEST(ExecutorObsTest, ResetMetricsKeepsHandlesValid) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  MetricsRegistry& m = exec.database().metrics();
  Counter& asserted = m.counter("facts.asserted");
  Histogram& latency = m.histogram("query.latency_ns");
  ASSERT_GT(asserted.value(), 0u);

  ASSERT_TRUE(exec.Execute("RESET METRICS;").ok());
  EXPECT_EQ(asserted.value(), 0u);
  asserted.Add(2);
  latency.Record(4096);
  EXPECT_EQ(m.counter("facts.asserted").value(), 2u);
  EXPECT_EQ(m.histogram("query.latency_ns").count(), 1u);
}

TEST(ExecutorObsTest, ShowLogEmptyPrintsHint) {
  hql::Executor exec;
  // The first statement lazily constructs the shared thread pool, which
  // logs a pool.start event; clear after so the ring is genuinely empty.
  ASSERT_TRUE(exec.Execute("SHOW METRICS;").ok());
  Logger::Global().ring().Clear();
  std::string out = exec.Execute("SHOW LOG;").value();
  EXPECT_NE(out.find("log empty (logging disabled?)"), std::string::npos);
}

TEST(ExecutorObsTest, DdlEventsReachShowLog) {
  Logger::Global().ring().Clear();
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());

  std::string text = exec.Execute("SHOW LOG;").value();
  EXPECT_NE(text.find("log ("), std::string::npos);
  EXPECT_NE(text.find("catalog.create_hierarchy"), std::string::npos);
  EXPECT_NE(text.find("catalog.create_relation"), std::string::npos);
  EXPECT_NE(text.find("name=animal"), std::string::npos);

  std::string json = exec.Execute("SHOW LOG JSON;").value();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"component\":\"catalog\""), std::string::npos);
  EXPECT_NE(json.find("\"event\":\"create_hierarchy\""), std::string::npos);
}

TEST(ExecutorObsTest, SetLogValidatesAndSetsLevel) {
  hql::Executor exec;
  std::string out = exec.Execute("SET LOG debug;").value();
  EXPECT_NE(out.find("log level: debug"), std::string::npos);
  EXPECT_EQ(Logger::Global().min_level(), LogLevel::kDebug);

  EXPECT_TRUE(exec.Execute("SET LOG chatty;").status().IsInvalidArgument());
  EXPECT_EQ(Logger::Global().min_level(), LogLevel::kDebug);

  ASSERT_TRUE(exec.Execute("SET LOG info;").ok());
  EXPECT_EQ(Logger::Global().min_level(), LogLevel::kInfo);
}

TEST(ExecutorObsTest, SlowQueryLogVisibleInShowLogJson) {
  Logger::Global().ring().Clear();
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());

  std::string armed = exec.Execute("SET SLOW_QUERY_MS 0;").value();
  EXPECT_NE(armed.find("threshold 0 ms"), std::string::npos);
  ASSERT_TRUE(exec.Execute("SELECT * FROM flies WHERE who = penguin;").ok());

  std::string json = exec.Execute("SHOW LOG JSON;").value();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"event\":\"slow_query\""), std::string::npos);
  EXPECT_NE(json.find("SELECT * FROM flies WHERE who = penguin"),
            std::string::npos);
  EXPECT_NE(json.find("\"digest\":"), std::string::npos);
  EXPECT_NE(json.find("\"nodes_executed\":"), std::string::npos);
  EXPECT_GE(exec.database().metrics().counter("query.slow_queries").value(),
            1u);

  std::string off = exec.Execute("SET SLOW_QUERY_MS OFF;").value();
  EXPECT_NE(off.find("slow-query log: off"), std::string::npos);
}

TEST(ExecutorObsTest, ShowMetricsPrometheusRendersExposition) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_TRUE(exec.Execute("SELECT * FROM flies;").ok());

  std::string text = exec.Execute("SHOW METRICS PROMETHEUS;").value();
  EXPECT_NE(text.find("# TYPE hirel_query_statements counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE hirel_query_execute_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("hirel_pool_queue_depth"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

TEST(ExecutorObsTest, ExportTraceWritesParseableChromeJson) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_TRUE(exec.Execute("SELECT * FROM flies;").ok());

  std::string path = std::string(::testing::TempDir()) + "/obs_trace.json";
  std::string out = exec.Execute("EXPORT TRACE '" + path + "';").value();
  EXPECT_NE(out.find("exported trace to"), std::string::npos);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string json = buffer.str();
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  EXPECT_NE(json.find("\"name\":\"execute\""), std::string::npos);
  // Braces and brackets stay balanced: the escaping above means none can
  // appear inside string values unmatched.
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  std::remove(path.c_str());
}

TEST(ExecutorObsTest, ShowMetricsReportsStorageGaugesPerLayout) {
  const StorageKind saved = DefaultStorageKind();
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute("SET STORAGE columnar;").ok());
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());

  std::string text = exec.Execute("SHOW METRICS;").value();
  EXPECT_NE(text.find("storage.row_relations"), std::string::npos);
  EXPECT_NE(text.find("storage.columnar_relations"), std::string::npos);
  EXPECT_NE(text.find("storage.row_bytes"), std::string::npos);
  EXPECT_NE(text.find("storage.columnar_bytes"), std::string::npos);

  // `flies` was created under the columnar default, so the columnar
  // gauges count it and its bytes.
  MetricsRegistry& m = exec.database().metrics();
  EXPECT_GE(m.gauge("storage.columnar_relations").value(), 1);
  EXPECT_GT(m.gauge("storage.columnar_bytes").value(), 0);
  SetDefaultStorageKind(saved);
}

TEST(ExecutorObsTest, ExportTraceParseableUnderColumnarStorage) {
  const StorageKind saved = DefaultStorageKind();
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute("SET STORAGE columnar;").ok());
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_TRUE(exec.Execute("SELECT * FROM flies;").ok());

  std::string path =
      std::string(::testing::TempDir()) + "/obs_trace_columnar.json";
  ASSERT_TRUE(exec.Execute("EXPORT TRACE '" + path + "';").ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string json = buffer.str();
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  std::remove(path.c_str());
  SetDefaultStorageKind(saved);
}

// ---------------------------------------------------------------------------
// Wait attribution and telemetry on the executor surface.

TEST(ExecutorObsTest, ExplainAnalyzeReportsPerNodeWaitNs) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  std::string out =
      exec.Execute("EXPLAIN ANALYZE SELECT * FROM flies WHERE who = penguin;")
          .value();
  EXPECT_NE(out.find("wait_ns="), std::string::npos);
  EXPECT_NE(out.find("totals: nodes="), std::string::npos);
}

TEST(ExecutorObsTest, SlowQueryLogSplitsWaitAndExec) {
  Logger::Global().ring().Clear();
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_TRUE(exec.Execute("SET SLOW_QUERY_MS 0;").ok());
  ASSERT_TRUE(exec.Execute("SELECT * FROM flies;").ok());

  std::string json = exec.Execute("SHOW LOG JSON;").value();
  EXPECT_NE(json.find("\"event\":\"slow_query\""), std::string::npos);
  EXPECT_NE(json.find("\"wait_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"exec_ms\":"), std::string::npos);
}

TEST(ExecutorObsTest, ShowQueriesReportsWaitShare) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_TRUE(exec.Execute("SELECT * FROM flies;").ok());

  std::string text = exec.Execute("SHOW QUERIES;").value();
  EXPECT_NE(text.find("ms wait="), std::string::npos);
  std::string json = exec.Execute("SHOW QUERIES JSON;").value();
  EXPECT_NE(json.find("\"wait_us\":"), std::string::npos);
}

TEST(ExecutorObsTest, SetTelemetryControlsSampler) {
  hql::Executor exec;
  std::string on = exec.Execute("SET TELEMETRY ON;").value();
  EXPECT_NE(on.find("telemetry: on"), std::string::npos);
  EXPECT_TRUE(exec.telemetry().running());

  std::string off = exec.Execute("SET TELEMETRY OFF;").value();
  EXPECT_NE(off.find("telemetry: off"), std::string::npos);
  EXPECT_FALSE(exec.telemetry().running());

  std::string interval = exec.Execute("SET TELEMETRY INTERVAL 250;").value();
  EXPECT_NE(interval.find("interval 250 ms"), std::string::npos);
  EXPECT_EQ(exec.telemetry().interval_ms(), 250u);
  EXPECT_TRUE(exec.Execute("SET TELEMETRY INTERVAL 0;")
                  .status()
                  .IsInvalidArgument());
}

TEST(ExecutorObsTest, ShowTelemetryRendersHistoryAfterManualTicks) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_TRUE(exec.Execute("SET TELEMETRY INTERVAL 50;").ok());
  exec.telemetry().Tick();
  exec.telemetry().Tick();

  std::string text = exec.Execute("SHOW TELEMETRY;").value();
  EXPECT_NE(text.find("telemetry: off (interval 50 ms, ticks 2"),
            std::string::npos);
  EXPECT_NE(text.find("query.statements"), std::string::npos);
  EXPECT_NE(text.find("rate="), std::string::npos);

  std::string json = exec.Execute("SHOW TELEMETRY JSON;").value();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"on\":false"), std::string::npos);
  EXPECT_NE(json.find("\"interval_ms\":50"), std::string::npos);
  EXPECT_NE(json.find("\"ticks\":2"), std::string::npos);
  EXPECT_NE(json.find("\"query.statements\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\":[["), std::string::npos);
  EXPECT_NE(json.find("\"rate_per_s\":"), std::string::npos);
}

TEST(ExecutorObsTest, ExportTraceIncludesWaitSpans) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  // SAVE blocks on snapshot.save (an io wait), which the trace-worthy
  // statement's capture window records.
  std::string snap = std::string(::testing::TempDir()) + "/obs_wait_snap.db";
  ASSERT_TRUE(exec.Execute("SAVE '" + snap + "';").ok());

  std::string path = std::string(::testing::TempDir()) + "/obs_wait_trace.json";
  ASSERT_TRUE(exec.Execute("EXPORT TRACE '" + path + "';").ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string json = buffer.str();
  EXPECT_NE(json.find("\"name\":\"wait:snapshot.save\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"wait\""), std::string::npos);
  EXPECT_NE(json.find("\"class\":\"io\""), std::string::npos);
  std::remove(path.c_str());
  std::remove(snap.c_str());
}

TEST(ExecutorObsTest, ResultsIdenticalWithWaitInstrumentationOff) {
  auto run = [] {
    hql::Executor exec;
    std::string out;
    out += exec.Execute(kFlyingScript).value();
    out += exec.Execute("SET THREADS 4;").value();
    out += exec.Execute("SELECT * FROM flies;").value();
    out += exec.Execute("SELECT * FROM flies WHERE who = penguin;").value();
    out += exec.Execute("COUNT flies;").value();
    return out;
  };
  std::string with_waits = run();
  WaitEventRegistry::Global().set_enabled(false);
  std::string without_waits = run();
  WaitEventRegistry::Global().set_enabled(true);
  EXPECT_EQ(with_waits, without_waits);
}

TEST(ExecutorObsTest, ResetMetricsAlsoZeroesWaitAggregates) {
  hql::Executor exec;
  WaitEventRegistry& reg = WaitEventRegistry::Global();
  reg.RegisterSite("test.wait_reset", WaitClass::kIo).Record(0, 5000);
  ASSERT_TRUE(exec.Execute("RESET METRICS;").ok());
  for (const WaitEventRegistry::SiteSnapshot& s : reg.Snapshot()) {
    EXPECT_EQ(s.count, 0u) << s.name;
  }
  EXPECT_EQ(reg.attributed_wait_ns(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace hirel

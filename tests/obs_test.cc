// Observability: MetricsRegistry semantics, histogram bucketing, the
// disabled fast path, trace span trees, and the executor-facing surface
// (EXPLAIN ANALYZE, SHOW METRICS, SHOW TRACE, RESET METRICS).

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <utility>

#include "hql/executor.h"
#include "io/wal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hirel {
namespace obs {
namespace {

TEST(MetricsRegistryTest, FindOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& c = reg.counter("queries");
  c.Add();
  c.Add(4);
  EXPECT_EQ(reg.counter("queries").value(), 5u);
  EXPECT_EQ(&reg.counter("queries"), &c);

  Gauge& g = reg.gauge("entries");
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(reg.gauge("entries").value(), 7);

  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistryTest, HandlesSurviveRegistryMove) {
  MetricsRegistry reg;
  Counter& c = reg.counter("moved");
  MetricsRegistry other = std::move(reg);
  c.Add(3);  // heap-allocated metric + heap-allocated enabled flag
  EXPECT_EQ(other.counter("moved").value(), 3u);
}

TEST(MetricsRegistryTest, HistogramBucketBoundaries) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  h.Record(0);        // bucket 0: < 1024 ns
  h.Record(1023);     // bucket 0
  h.Record(1024);     // bucket 1: < 2048 ns
  h.Record(1u << 20); // bucket 11: < 1024 << 11
  h.Record(uint64_t{1} << 60);  // overflow

  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.max_ns(), uint64_t{1} << 60);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[11], 1u);
  EXPECT_EQ(h.buckets()[Histogram::kBuckets - 1], 1u);

  EXPECT_EQ(Histogram::BucketBound(0), 1024u);
  EXPECT_EQ(Histogram::BucketBound(1), 2048u);
  EXPECT_EQ(Histogram::BucketBound(Histogram::kBuckets - 1), 0u);
}

TEST(MetricsRegistryTest, DisabledUpdatesAreNoOps) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h");

  reg.set_enabled(false);
  c.Add(5);
  g.Set(5);
  h.Record(5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);

  reg.set_enabled(true);
  c.Add(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsNames) {
  MetricsRegistry reg;
  reg.counter("a").Add(7);
  reg.histogram("b").Record(100);
  reg.Reset();
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.counter("a").value(), 0u);
  EXPECT_EQ(reg.histogram("b").count(), 0u);
}

TEST(MetricsRegistryTest, RenderAndJsonShapes) {
  MetricsRegistry reg;
  EXPECT_NE(reg.Render().find("(none)"), std::string::npos);

  reg.counter("queries").Add(2);
  reg.gauge("depth").Set(-1);
  reg.histogram("lat").Record(3000);
  std::string text = reg.Render();
  EXPECT_NE(text.find("queries"), std::string::npos);
  EXPECT_NE(text.find("depth"), std::string::npos);

  std::string json = reg.RenderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"queries\":2"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":-1"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(TraceTest, ScopesBuildNestedSpanTree) {
  Trace trace;
  EXPECT_TRUE(trace.empty());
  {
    Trace::Scope outer(&trace, "execute");
    outer.Note("rows", 42);
    { Trace::Scope inner(&trace, "plan"); }
  }
  { Trace::Scope other(&trace, "derive"); }

  ASSERT_EQ(trace.spans().size(), 2u);
  const TraceSpan& execute = *trace.spans()[0];
  EXPECT_EQ(execute.name, "execute");
  ASSERT_EQ(execute.notes.size(), 1u);
  EXPECT_EQ(execute.notes[0].first, "rows");
  EXPECT_EQ(execute.notes[0].second, 42u);
  ASSERT_EQ(execute.children.size(), 1u);
  EXPECT_EQ(execute.children[0]->name, "plan");
  EXPECT_EQ(trace.spans()[1]->name, "derive");

  std::string text = trace.Render();
  EXPECT_NE(text.find("execute"), std::string::npos);
  EXPECT_NE(text.find("rows=42"), std::string::npos);

  std::string json = trace.RenderJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"plan\""), std::string::npos);

  trace.Clear();
  EXPECT_TRUE(trace.empty());
  EXPECT_NE(trace.Render().find("(none)"), std::string::npos);
}

TEST(TraceTest, NullTraceScopesAreNoOps) {
  Trace::Scope scope(nullptr, "nothing");
  scope.Note("rows", 1);  // must not crash
}

// ---------------------------------------------------------------------------
// Executor surface.

constexpr const char* kFlyingScript = R"(
CREATE HIERARCHY animal;
CREATE CLASS bird IN animal;
CREATE CLASS penguin IN animal UNDER bird;
CREATE CLASS afp IN animal UNDER penguin;
CREATE INSTANCE peter IN animal UNDER afp;
CREATE RELATION flies (who: animal);
ASSERT flies(ALL bird);
DENY flies(ALL penguin);
ASSERT flies(ALL afp);
)";

TEST(ExecutorObsTest, DeterministicCountersAfterScript) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  MetricsRegistry& m = exec.database().metrics();
  EXPECT_EQ(m.counter("query.statements").value(), 9u);
  EXPECT_EQ(m.counter("facts.asserted").value(), 2u);
  EXPECT_EQ(m.counter("facts.denied").value(), 1u);
  EXPECT_EQ(m.counter("query.errors").value(), 0u);
}

TEST(ExecutorObsTest, ShowMetricsIsNonzeroAndJsonWellFormed) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_TRUE(exec.Execute("SELECT * FROM flies WHERE who = penguin;").ok());

  std::string text = exec.Execute("SHOW METRICS;").value();
  EXPECT_NE(text.find("query.statements"), std::string::npos);
  EXPECT_NE(text.find("plan.nodes_executed"), std::string::npos);
  EXPECT_NE(text.find("subsumption_cache."), std::string::npos);
  EXPECT_EQ(text.find("(none)"), std::string::npos);

  std::string json = exec.Execute("SHOW METRICS JSON;").value();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"query.statements\""), std::string::npos);
}

TEST(ExecutorObsTest, ExplainAnalyzeReportsActuals) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  std::string out =
      exec.Execute("EXPLAIN ANALYZE SELECT * FROM flies WHERE who = penguin;")
          .value();
  EXPECT_NE(out.find("analyzed plan for"), std::string::npos);
  EXPECT_NE(out.find("actual rows="), std::string::npos);
  EXPECT_NE(out.find("probes="), std::string::npos);
  EXPECT_NE(out.find("totals: nodes="), std::string::npos);
}

TEST(ExecutorObsTest, ShowTraceReportsPreviousQuery) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_TRUE(exec.Execute("SELECT * FROM flies;").ok());

  std::string trace = exec.Execute("SHOW TRACE;").value();
  EXPECT_NE(trace.find("select"), std::string::npos);
  EXPECT_NE(trace.find("plan"), std::string::npos);
  EXPECT_NE(trace.find("execute"), std::string::npos);

  // SHOW TRACE itself is not trace-worthy: asking again reports the same
  // query, not the SHOW TRACE statement.
  std::string again = exec.Execute("SHOW TRACE;").value();
  EXPECT_NE(again.find("select"), std::string::npos);

  std::string json = exec.Execute("SHOW TRACE JSON;").value();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"execute\""), std::string::npos);
}

TEST(ExecutorObsTest, DeriveFixpointRoundsAreTraced) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(R"(
CREATE HIERARCHY h;
CREATE INSTANCE a IN h;
CREATE INSTANCE b IN h;
CREATE INSTANCE c IN h;
CREATE RELATION edge (src: h, dst: h);
CREATE RELATION path (src: h, dst: h);
ASSERT edge(a, b);
ASSERT edge(b, c);
RULE 'path(?x, ?y) :- edge(?x, ?y).';
RULE 'path(?x, ?z) :- path(?x, ?y), edge(?y, ?z).';
DERIVE;
)")
                  .ok());
  std::string trace = exec.Execute("SHOW TRACE;").value();
  EXPECT_NE(trace.find("derive fixpoint"), std::string::npos);
  EXPECT_NE(trace.find("derive round"), std::string::npos);
  EXPECT_GT(exec.database().metrics().counter("derive.facts_derived").value(),
            0u);
}

TEST(ExecutorObsTest, WalCountersTrackAppendsAndReplay) {
  std::string dir = std::string(::testing::TempDir()) + "/obs_wal_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  {
    auto ldb = LoggedDatabase::Open(dir).value();
    ASSERT_TRUE(ldb->CreateHierarchy("h").ok());
    ASSERT_TRUE(ldb->CreateRelation("r", {{"x", "h"}}).ok());
    MetricsRegistry& m = ldb->db().metrics();
    EXPECT_EQ(m.counter("wal.records_appended").value(), 2u);
    EXPECT_GT(m.counter("wal.bytes_appended").value(), 0u);
    EXPECT_EQ(m.counter("wal.flushes").value(), 2u);
  }
  {
    auto ldb = LoggedDatabase::Open(dir).value();
    EXPECT_EQ(ldb->db().metrics().counter("wal.records_replayed").value(), 2u);
  }
  std::filesystem::remove_all(dir);
}

TEST(ExecutorObsTest, ResetMetricsZeroesEverything) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_GT(exec.database().metrics().counter("facts.asserted").value(), 0u);

  std::string out = exec.Execute("RESET METRICS;").value();
  EXPECT_NE(out.find("metrics reset"), std::string::npos);
  EXPECT_EQ(exec.database().metrics().counter("facts.asserted").value(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace hirel

// End-to-end integration tests walking through every worked example in the
// paper, in order, using the public API the way a downstream user would.

#include <gtest/gtest.h>

#include "algebra/join.h"
#include "algebra/justify.h"
#include "algebra/project.h"
#include "algebra/select.h"
#include "algebra/setops.h"
#include "core/conflict.h"
#include "core/consolidate.h"
#include "core/explicate.h"
#include "core/inference.h"
#include "core/subsumption.h"
#include "io/snapshot.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::ElephantFixture;
using testing::FlyingFixture;
using testing::LovesFixture;
using testing::RespectsFixture;

TEST(PaperExamplesTest, Section21FlyingCreatures) {
  FlyingFixture f;
  // Storage claim: 4 tuples instead of one per flying creature.
  EXPECT_EQ(f.flies->size(), 4u);
  EXPECT_EQ(Extension(*f.flies).value().size(), 4u);

  // The whole cast of Section 2.1.
  EXPECT_TRUE(Holds(*f.flies, {f.tweety}).value());
  EXPECT_FALSE(Holds(*f.flies, {f.paul}).value());
  EXPECT_TRUE(Holds(*f.flies, {f.pamela}).value());
  EXPECT_TRUE(Holds(*f.flies, {f.patricia}).value());
  EXPECT_TRUE(Holds(*f.flies, {f.peter}).value());
}

TEST(PaperExamplesTest, Section21GrowingTheHierarchyChangesExtensions) {
  FlyingFixture f;
  // "If class membership is determined as a function, one could
  // potentially have an infinite number of values that belong to a class":
  // adding members costs nothing in the relation.
  size_t tuples_before = f.flies->size();
  for (int i = 0; i < 100; ++i) {
    NodeId n = f.animal
                   ->AddInstance(Value::String("canary" + std::to_string(i)),
                                 f.canary)
                   .value();
    EXPECT_TRUE(Holds(*f.flies, {n}).value());
  }
  EXPECT_EQ(f.flies->size(), tuples_before);
  EXPECT_EQ(Extension(*f.flies).value().size(), 104u);
}

TEST(PaperExamplesTest, Section22RespectsConflictLifecycle) {
  // Build the Fig. 3 relation the prescribed way: resolver before the
  // exception.
  RespectsFixture f(/*with_resolver=*/true);
  EXPECT_TRUE(CheckAmbiguity(*f.respects).ok());

  // Dropping the resolver re-creates the conflict of the dashed line.
  ASSERT_TRUE(f.respects->EraseItem({f.obsequious, f.incoherent}).ok());
  Status conflicted = CheckAmbiguity(*f.respects);
  ASSERT_TRUE(conflicted.IsConflict());

  // The minimal conflict-resolution set is exactly the item the paper
  // inserts.
  std::vector<ConflictSite> sites = FindConflicts(*f.respects).value();
  ASSERT_EQ(sites.size(), 1u);
  std::vector<Item> minimal = MinimalConflictResolutionSet(
      f.respects->schema(),
      f.respects->tuple(sites[0].binders[0]).item,
      f.respects->tuple(sites[0].binders[1]).item);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], (Item{f.obsequious, f.incoherent}));
}

TEST(PaperExamplesTest, Section31ClydeRoyalElephant) {
  ElephantFixture f;
  // The full verdict matrix of Fig. 4.
  struct Case {
    NodeId animal;
    NodeId color;
    Truth expected;
  };
  std::vector<Case> cases{
      {f.elephant, f.grey, Truth::kPositive},
      {f.african, f.grey, Truth::kPositive},
      {f.indian, f.grey, Truth::kPositive},
      {f.royal, f.grey, Truth::kNegative},
      {f.royal, f.white, Truth::kPositive},
      {f.clyde, f.grey, Truth::kNegative},
      {f.clyde, f.white, Truth::kNegative},
      {f.clyde, f.dappled, Truth::kPositive},
      {f.appu, f.grey, Truth::kNegative},
      {f.appu, f.white, Truth::kPositive},
      {f.appu, f.dappled, Truth::kNegative},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(InferTruth(*f.colors, {c.animal, c.color}).value(), c.expected)
        << f.animal->NodeName(c.animal) << " / "
        << f.color->NodeName(c.color);
  }
}

TEST(PaperExamplesTest, Section332FullPipeline) {
  // consolidate(explicate(R)) == extension, and consolidation after
  // operators cleans up the redundant tuples the paper mentions.
  LovesFixture f;
  HierarchicalRelation uni = Union(*f.jill, *f.jack).value();
  size_t before = uni.size();
  ASSERT_TRUE(ConsolidateInPlace(uni).ok());
  EXPECT_LT(uni.size(), before);
  EXPECT_EQ(Extension(uni).value().size(), 5u);  // all birds
}

TEST(PaperExamplesTest, Section34SelectionsAndJustification) {
  RespectsFixture f;
  // Fig. 7.
  HierarchicalRelation fig7 =
      SelectEquals(*f.respects, "who", "obsequious_student").value();
  EXPECT_FALSE(Extension(fig7).value().empty());
  // Fig. 8.
  HierarchicalRelation fig8 = SelectEquals(*f.respects, "who", "john").value();
  std::vector<Item> ext = Extension(fig8).value();
  ASSERT_EQ(ext.size(), 2u);  // john x {jim, wendy}

  // Fig. 9 justification on the elephants.
  ElephantFixture e;
  Justification j = Explain(*e.colors, {e.clyde, e.grey}).value();
  EXPECT_EQ(j.verdict, Truth::kNegative);
  EXPECT_EQ(j.applicable.size(), 2u);
}

TEST(PaperExamplesTest, Fig11JoinProjectRoundTrip) {
  ElephantFixture f;
  HierarchicalRelation joined = NaturalJoin(*f.colors, *f.enclosure).value();
  HierarchicalRelation back =
      Project(joined, std::vector<std::string>{"animal", "color"}).value();
  EXPECT_EQ(Extension(back).value(), Extension(*f.colors).value());
}

TEST(PaperExamplesTest, UpwardCompatibilityFlatRelationsWorkUnchanged) {
  // Section 1/4: "Our model is upwards compatible with the standard
  // relational model." A relation holding only atomic positive tuples
  // behaves exactly like a flat relation under every operator.
  FlyingFixture f;
  HierarchicalRelation* plain =
      f.db.CreateRelation("plain", {{"who", "animal"}}).value();
  ASSERT_TRUE(plain->Insert({f.tweety}, Truth::kPositive).ok());
  ASSERT_TRUE(plain->Insert({f.paul}, Truth::kPositive).ok());

  // Extension is the tuple set itself.
  EXPECT_EQ(Extension(*plain).value().size(), 2u);
  // Consolidation removes nothing.
  EXPECT_EQ(ConsolidateInPlace(*plain).value(), 0u);
  // Explication is the identity.
  EXPECT_EQ(Explicate(*plain).value().size(), 2u);
  // Selection behaves classically.
  HierarchicalRelation sel = SelectEquals(*plain, 0, f.tweety).value();
  EXPECT_EQ(Extension(sel).value(), (std::vector<Item>{{f.tweety}}));
}

TEST(PaperExamplesTest, WholePaperDatabaseSurvivesPersistence) {
  ElephantFixture f;
  std::string data = SerializeDatabase(f.db).value();
  std::unique_ptr<Database> loaded = DeserializeDatabase(data).value();
  HierarchicalRelation* colors = loaded->GetRelation("color_of").value();
  Hierarchy* animal = loaded->GetHierarchy("animal").value();
  Hierarchy* color = loaded->GetHierarchy("color").value();
  NodeId appu = animal->FindInstance(Value::String("appu")).value();
  NodeId white = color->FindInstance(Value::String("white")).value();
  EXPECT_EQ(InferTruth(*colors, {appu, white}).value(), Truth::kPositive);
}

}  // namespace
}  // namespace hirel

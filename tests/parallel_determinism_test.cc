// Byte-identical parallel execution: every parallel kernel must produce
// exactly the relation (rendering and all) the serial kernel produces, at
// any thread count, and EXPLAIN ANALYZE's probe totals must stay exact.
// Thread count 7 is deliberately coprime with the typical chunking so
// chunk boundaries land in odd places.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebra/join.h"
#include "algebra/project.h"
#include "algebra/select.h"
#include "algebra/setops.h"
#include "core/consolidate.h"
#include "core/explicate.h"
#include "core/subsumption.h"
#include "rules/rule.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

const size_t kThreadCounts[] = {1, 2, 4, 7};

InferenceOptions WithThreads(size_t threads, uint64_t* probes = nullptr) {
  InferenceOptions options;
  options.threads = threads;
  options.probe_counter = probes;
  return options;
}

testing::RandomFixtureOptions DenseFixture() {
  testing::RandomFixtureOptions options;
  options.num_classes = 16;
  options.num_instances = 40;
  options.num_tuples = 24;
  return options;
}

TEST(ParallelDeterminismTest, ConsolidateMatchesSerial) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    testing::RandomDatabase rdb(seed, DenseFixture());
    uint64_t serial_probes = 0;
    HierarchicalRelation reference =
        Consolidated(*rdb.relation(), WithThreads(1, &serial_probes))
            .value();
    for (size_t t : kThreadCounts) {
      uint64_t probes = 0;
      Result<HierarchicalRelation> parallel =
          Consolidated(*rdb.relation(), WithThreads(t, &probes));
      ASSERT_TRUE(parallel.ok()) << "seed " << seed << " threads " << t;
      EXPECT_EQ(parallel->ToString(), reference.ToString())
          << "seed " << seed << " threads " << t;
      EXPECT_EQ(probes, serial_probes)
          << "seed " << seed << " threads " << t;
    }
  }
}

TEST(ParallelDeterminismTest, ExplicateMatchesSerial) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    testing::RandomDatabase rdb(seed, DenseFixture());
    for (bool consolidate_after : {false, true}) {
      ExplicateOptions serial;
      serial.consolidate_after = consolidate_after;
      HierarchicalRelation reference =
          Explicate(*rdb.relation(), {}, serial).value();
      for (size_t t : kThreadCounts) {
        ExplicateOptions opts;
        opts.consolidate_after = consolidate_after;
        opts.inference.threads = t;
        Result<HierarchicalRelation> parallel =
            Explicate(*rdb.relation(), {}, opts);
        ASSERT_TRUE(parallel.ok()) << "seed " << seed << " threads " << t;
        EXPECT_EQ(parallel->ToString(), reference.ToString())
            << "seed " << seed << " threads " << t;
      }
    }
  }
}

TEST(ParallelDeterminismTest, ExplicateOverflowErrorMatchesSerial) {
  testing::FlyingFixture f;
  ExplicateOptions serial;
  serial.max_result_tuples = 2;  // flies explicates to more rows than this
  Status reference = Explicate(*f.flies, {}, serial).status();
  ASSERT_TRUE(reference.IsResourceExhausted());
  for (size_t t : kThreadCounts) {
    ExplicateOptions opts;
    opts.max_result_tuples = 2;
    opts.inference.threads = t;
    Status status = Explicate(*f.flies, {}, opts).status();
    EXPECT_EQ(status.ToString(), reference.ToString()) << "threads " << t;
  }
}

TEST(ParallelDeterminismTest, SubsumptionGraphMatchesSerial) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    testing::RandomDatabase rdb(seed, DenseFixture());
    std::string reference = SubsumptionGraphToString(
        *rdb.relation(), BuildSubsumptionGraph(*rdb.relation()));
    for (size_t t : kThreadCounts) {
      EXPECT_EQ(SubsumptionGraphToString(
                    *rdb.relation(),
                    BuildSubsumptionGraph(*rdb.relation(), t)),
                reference)
          << "seed " << seed << " threads " << t;
    }
  }
}

TEST(ParallelDeterminismTest, SelectAndSetOpsMatchSerial) {
  testing::LovesFixture f;
  uint64_t serial_probes = 0;
  std::string select_ref =
      SelectEquals(*f.jill, 0, f.base.penguin, WithThreads(1, &serial_probes))
          .value()
          .ToString();
  SetOpOptions serial_setop;
  std::string union_ref = Union(*f.jill, *f.jack, serial_setop)
                              .value()
                              .ToString();
  std::string diff_ref = Difference(*f.jill, *f.jack, serial_setop)
                             .value()
                             .ToString();
  for (size_t t : kThreadCounts) {
    uint64_t probes = 0;
    EXPECT_EQ(SelectEquals(*f.jill, 0, f.base.penguin,
                           WithThreads(t, &probes))
                  .value()
                  .ToString(),
              select_ref)
        << "threads " << t;
    EXPECT_EQ(probes, serial_probes) << "threads " << t;

    SetOpOptions setop;
    setop.inference.threads = t;
    EXPECT_EQ(Union(*f.jill, *f.jack, setop).value().ToString(), union_ref)
        << "threads " << t;
    EXPECT_EQ(Difference(*f.jill, *f.jack, setop).value().ToString(),
              diff_ref)
        << "threads " << t;
  }
}

TEST(ParallelDeterminismTest, JoinAndProjectMatchSerial) {
  testing::ElephantFixture f;
  JoinOptions serial_join;
  std::string join_ref =
      NaturalJoin(*f.colors, *f.enclosure, serial_join).value().ToString();
  ProjectOptions serial_project;
  std::string project_ref =
      Project(*f.colors, std::vector<size_t>{0}, serial_project)
          .value()
          .ToString();
  for (size_t t : kThreadCounts) {
    JoinOptions join;
    join.inference.threads = t;
    EXPECT_EQ(NaturalJoin(*f.colors, *f.enclosure, join).value().ToString(),
              join_ref)
        << "threads " << t;
    ProjectOptions project;
    project.inference.threads = t;
    EXPECT_EQ(
        Project(*f.colors, std::vector<size_t>{0}, project)
            .value()
            .ToString(),
        project_ref)
        << "threads " << t;
  }
}

TEST(ParallelDeterminismTest, DeriveFixpointMatchesSerial) {
  std::string reference;
  for (size_t t : kThreadCounts) {
    testing::FlyingFixture zoo;
    HierarchicalRelation* travels_far =
        zoo.db.CreateRelation("travels_far", {{"who", "animal"}}).value();
    RuleEngine engine(&zoo.db);
    ASSERT_TRUE(engine.AddRule("travels_far(?x) :- flies(?x).").ok());
    RuleOptions options;
    options.inference.threads = t;
    options.subsumption_cache = &zoo.db.subsumption_cache();
    ASSERT_TRUE(engine.Evaluate(options).ok()) << "threads " << t;
    if (t == 1) {
      reference = travels_far->ToString();
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(travels_far->ToString(), reference) << "threads " << t;
    }
  }
}

}  // namespace
}  // namespace hirel

#include "hql/parser.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hirel {
namespace hql {
namespace {

template <typename T>
T ParseOne(const std::string& source) {
  Result<std::vector<Statement>> parsed = ParseScript(source);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->size(), 1u);
  const T* stmt = std::get_if<T>(&parsed->front());
  EXPECT_NE(stmt, nullptr);
  return *stmt;
}

TEST(ParserTest, CreateHierarchy) {
  auto stmt = ParseOne<CreateHierarchyStmt>("CREATE HIERARCHY animal;");
  EXPECT_EQ(stmt.name, "animal");
}

TEST(ParserTest, CreateClassWithParents) {
  auto stmt =
      ParseOne<CreateClassStmt>("create class afp in animal under penguin,"
                                " bird;");
  EXPECT_EQ(stmt.name, "afp");
  EXPECT_EQ(stmt.hierarchy, "animal");
  EXPECT_EQ(stmt.parents, (std::vector<std::string>{"penguin", "bird"}));
}

TEST(ParserTest, CreateClassWithoutParents) {
  auto stmt = ParseOne<CreateClassStmt>("CREATE CLASS bird IN animal;");
  EXPECT_TRUE(stmt.parents.empty());
}

TEST(ParserTest, CreateInstanceVariants) {
  auto named =
      ParseOne<CreateInstanceStmt>("CREATE INSTANCE tweety IN animal "
                                   "UNDER canary;");
  EXPECT_EQ(named.value, Value::String("tweety"));
  auto quoted =
      ParseOne<CreateInstanceStmt>("CREATE INSTANCE 'big bird' IN animal;");
  EXPECT_EQ(quoted.value, Value::String("big bird"));
  auto number = ParseOne<CreateInstanceStmt>("CREATE INSTANCE 3000 IN sz;");
  EXPECT_EQ(number.value, Value::Int(3000));
}

TEST(ParserTest, CreateRelation) {
  auto stmt = ParseOne<CreateRelationStmt>(
      "CREATE RELATION color_of (animal: animal, color: color);");
  EXPECT_EQ(stmt.name, "color_of");
  ASSERT_EQ(stmt.attributes.size(), 2u);
  EXPECT_EQ(stmt.attributes[0].first, "animal");
  EXPECT_EQ(stmt.attributes[1].second, "color");
}

TEST(ParserTest, CreateAsSetOps) {
  auto u = ParseOne<CreateAsStmt>("CREATE RELATION x AS a UNION b;");
  EXPECT_EQ(u.op, CreateAsStmt::Op::kUnion);
  auto i = ParseOne<CreateAsStmt>("CREATE RELATION x AS a INTERSECT b;");
  EXPECT_EQ(i.op, CreateAsStmt::Op::kIntersect);
  auto e = ParseOne<CreateAsStmt>("CREATE RELATION x AS a EXCEPT b;");
  EXPECT_EQ(e.op, CreateAsStmt::Op::kExcept);
  auto j = ParseOne<CreateAsStmt>("CREATE RELATION x AS a JOIN b;");
  EXPECT_EQ(j.op, CreateAsStmt::Op::kJoin);
  EXPECT_EQ(j.left, "a");
  EXPECT_EQ(j.right, "b");
}

TEST(ParserTest, CreateAsProject) {
  auto stmt = ParseOne<CreateProjectStmt>(
      "CREATE RELATION x AS PROJECT r ON (a, b);");
  EXPECT_EQ(stmt.source, "r");
  EXPECT_EQ(stmt.attributes, (std::vector<std::string>{"a", "b"}));
}

TEST(ParserTest, FactStatements) {
  auto a = ParseOne<FactStmt>("ASSERT flies(ALL bird);");
  EXPECT_EQ(a.kind, FactStmt::Kind::kAssert);
  ASSERT_EQ(a.terms.size(), 1u);
  EXPECT_EQ(a.terms[0].kind, Term::Kind::kAll);
  EXPECT_EQ(a.terms[0].name, "bird");

  auto d = ParseOne<FactStmt>("DENY color_of(ALL royal, grey);");
  EXPECT_EQ(d.kind, FactStmt::Kind::kDeny);
  ASSERT_EQ(d.terms.size(), 2u);
  EXPECT_EQ(d.terms[1].kind, Term::Kind::kName);

  auto r = ParseOne<FactStmt>("RETRACT enclosure(ALL elephant, 3000);");
  EXPECT_EQ(r.kind, FactStmt::Kind::kRetract);
  EXPECT_EQ(r.terms[1].kind, Term::Kind::kLiteral);
  EXPECT_EQ(r.terms[1].literal, Value::Int(3000));
}

TEST(ParserTest, SelectWithAndWithoutWhere) {
  auto plain = ParseOne<SelectStmt>("SELECT * FROM flies;");
  EXPECT_FALSE(plain.has_where);
  auto where = ParseOne<SelectStmt>("SELECT * FROM flies WHERE who = paul;");
  EXPECT_TRUE(where.has_where);
  EXPECT_EQ(where.attribute, "who");
  EXPECT_EQ(where.term.name, "paul");
}

TEST(ParserTest, ExplainExplicateConsolidateExtension) {
  auto ex = ParseOne<ExplainStmt>("EXPLAIN flies(patricia);");
  EXPECT_EQ(ex.relation, "flies");
  auto con = ParseOne<ConsolidateStmt>("CONSOLIDATE respects;");
  EXPECT_EQ(con.relation, "respects");
  auto expl = ParseOne<ExplicateStmt>("EXPLICATE color_of ON (animal);");
  EXPECT_EQ(expl.attributes, (std::vector<std::string>{"animal"}));
  auto full = ParseOne<ExplicateStmt>("EXPLICATE color_of;");
  EXPECT_TRUE(full.attributes.empty());
  auto ext = ParseOne<ExtensionStmt>("EXTENSION flies;");
  EXPECT_EQ(ext.relation, "flies");
}

TEST(ParserTest, ConnectAndPrefer) {
  auto c = ParseOne<ConnectStmt>("CONNECT galapagos TO patricia IN animal;");
  EXPECT_EQ(c.parent, "galapagos");
  EXPECT_EQ(c.child, "patricia");
  auto p = ParseOne<PreferStmt>("PREFER royal OVER indian IN animal;");
  EXPECT_EQ(p.stronger, "royal");
  EXPECT_EQ(p.weaker, "indian");
}

TEST(ParserTest, ShowDropSaveLoadHelp) {
  auto sh = ParseOne<ShowStmt>("SHOW HIERARCHY animal;");
  EXPECT_EQ(sh.what, ShowStmt::What::kHierarchy);
  auto sr = ParseOne<ShowStmt>("SHOW RELATIONS;");
  EXPECT_EQ(sr.what, ShowStmt::What::kRelations);
  auto dr = ParseOne<DropStmt>("DROP RELATION flies;");
  EXPECT_FALSE(dr.hierarchy);
  auto dh = ParseOne<DropStmt>("DROP HIERARCHY animal;");
  EXPECT_TRUE(dh.hierarchy);
  auto sv = ParseOne<SaveStmt>("SAVE '/tmp/db.hirel';");
  EXPECT_EQ(sv.path, "/tmp/db.hirel");
  auto ld = ParseOne<LoadStmt>("LOAD '/tmp/db.hirel';");
  EXPECT_EQ(ld.path, "/tmp/db.hirel");
  ParseOne<HelpStmt>("HELP;");
}

TEST(ParserTest, MultipleStatements) {
  auto parsed = ParseScript(
      "CREATE HIERARCHY a; CREATE HIERARCHY b; SHOW HIERARCHIES;");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 3u);
}

TEST(ParserTest, ErrorsCarryLineInfo) {
  Status s = ParseScript("CREATE RELATION r (a animal);").status();
  ASSERT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("line 1"), std::string::npos);
}

TEST(ParserTest, MissingSemicolonFails) {
  EXPECT_TRUE(ParseScript("HELP").status().IsParseError());
}

TEST(ParserTest, GarbageStatementFails) {
  EXPECT_TRUE(ParseScript("FROBNICATE x;").status().IsParseError());
  EXPECT_TRUE(ParseScript("CREATE SOMETHING x;").status().IsParseError());
  EXPECT_TRUE(
      ParseScript("CREATE RELATION x AS a MINUS b;").status().IsParseError());
}


// Robustness: random token soup must never crash the lexer or parser —
// only produce parse errors (or occasionally parse, which is fine).
TEST(ParserTest, RandomTokenSoupNeverCrashes) {
  const char* fragments[] = {
      "CREATE",  "HIERARCHY", "RELATION", "ASSERT", "DENY",   "SELECT",
      "(",       ")",         ",",        ";",      ":",      "=",
      "*",       "ALL",       "flies",    "bird",   "'str'",  "42",
      "3.5",     "WHERE",     "FROM",     "JOIN",   "--x\n", "RULE",
      "BEGIN",   "COMMIT",    "DROP",     "SHOW",   "BY",     "?",
  };
  Random rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    std::string script;
    size_t len = 1 + rng.Index(20);
    for (size_t i = 0; i < len; ++i) {
      script += fragments[rng.Index(std::size(fragments))];
      script += " ";
    }
    script += ";";
    // Must not crash; status may be anything.
    Result<std::vector<Statement>> parsed = ParseScript(script);
    (void)parsed;
  }
}

}  // namespace
}  // namespace hql
}  // namespace hirel

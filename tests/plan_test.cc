// Property tests for the plan layer: on randomized databases and randomized
// query trees, the rewriter must preserve extension semantics — the
// optimized plan and the unoptimized plan denote the same flat relation —
// under every preemption mode, and repeated execution through the
// subsumption cache must not change any result.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/str_util.h"
#include "core/conflict.h"
#include "core/explicate.h"
#include "core/tuple_store.h"
#include "hql/executor.h"
#include "plan/execute.h"
#include "plan/explain.h"
#include "plan/plan_node.h"
#include "plan/rewrite.h"
#include "testing/fixtures.h"

namespace hirel {
namespace plan {
namespace {

constexpr PreemptionMode kModes[] = {
    PreemptionMode::kOffPath, PreemptionMode::kOnPath, PreemptionMode::kNone};

/// Prunes trailing tuples until `r` satisfies the ambiguity constraint
/// under every preemption mode — inference inside a plan must never hit a
/// conflict regardless of which mode a sample runs with.
void MakeUnambiguousEverywhere(HierarchicalRelation& r) {
  auto ambiguous = [&r]() {
    for (PreemptionMode mode : kModes) {
      InferenceOptions options;
      options.preemption = mode;
      if (!CheckAmbiguity(r, options).ok()) return true;
    }
    return false;
  };
  while (ambiguous()) {
    std::vector<TupleId> ids = r.TupleIds();
    ASSERT_FALSE(ids.empty());
    ASSERT_TRUE(r.Erase(ids.back()).ok());
  }
}

/// A second consistent relation over the same single-attribute domain, so
/// random trees can combine two compatible leaves.
HierarchicalRelation* MakeSecondRelation(testing::RandomDatabase& rdb,
                                         uint64_t seed) {
  HierarchicalRelation* s =
      rdb.db().CreateRelation("s", {{"a0", "domain0"}}).value();
  Random rng(seed);
  std::vector<NodeId> nodes = rdb.hierarchy(0)->Nodes();
  for (int i = 0; i < 6; ++i) {
    Item item{nodes[rng.Index(nodes.size())]};
    Truth truth = rng.Bernoulli(0.4) ? Truth::kNegative : Truth::kPositive;
    (void)s->Insert(item, truth);
  }
  MakeUnambiguousEverywhere(*s);
  return s;
}

/// A random single-attribute plan tree. Every operator here preserves the
/// (a0: domain0) schema, so any two subtrees compose.
PlanPtr RandomTree(Random& rng, Hierarchy* h, int depth) {
  if (depth <= 0 || rng.Bernoulli(0.3)) {
    return MakeScan(rng.Bernoulli(0.5) ? "r" : "s");
  }
  switch (rng.Index(6)) {
    case 0: {
      std::vector<NodeId> nodes = h->Nodes();
      NodeId node = nodes[rng.Index(nodes.size())];
      return MakeSelect(RandomTree(rng, h, depth - 1), 0, node, "a0",
                        h->NodeName(node));
    }
    case 1: {
      SetOpKind kind = static_cast<SetOpKind>(rng.Index(3));
      return MakeSetOp(kind, RandomTree(rng, h, depth - 1),
                       RandomTree(rng, h, depth - 1));
    }
    case 2:
      return MakeNaturalJoin(RandomTree(rng, h, depth - 1),
                             RandomTree(rng, h, depth - 1));
    case 3:
      return MakeConsolidate(RandomTree(rng, h, depth - 1));
    case 4:
      return MakeExplicate(RandomTree(rng, h, depth - 1), {},
                           /*consolidate_after=*/rng.Bernoulli(0.5));
    default:
      return MakeProject(RandomTree(rng, h, depth - 1), {0});
  }
}

std::vector<Item> ExtensionOf(const HierarchicalRelation& r,
                              const InferenceOptions& inference) {
  ExplicateOptions options;
  options.inference = inference;
  return Extension(r, options).value();
}

class PlanProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanProperty, RewritesPreserveExtensionUnderAllPreemptionModes) {
  testing::RandomFixtureOptions fixture;
  fixture.num_tuples = 9;
  testing::RandomDatabase rdb(GetParam(), fixture);
  MakeUnambiguousEverywhere(*rdb.relation());
  MakeSecondRelation(rdb, GetParam() ^ 0x9e3779b9);
  Random rng(GetParam() * 2654435761u + 1);

  for (int sample = 0; sample < 12; ++sample) {
    PlanPtr tree = RandomTree(rng, rdb.hierarchy(0), 4);
    PlanPtr baseline = ClonePlan(*tree);
    Status annotated = AnnotatePlan(*baseline, rdb.db());
    ASSERT_TRUE(annotated.ok()) << annotated;

    RewriteStats stats;
    Result<PlanPtr> rewritten =
        RewritePlan(std::move(tree), rdb.db(), {}, &stats);
    ASSERT_TRUE(rewritten.ok()) << rewritten.status();
    // Rendering any annotated tree must always work.
    EXPECT_FALSE(ExplainPlanTree(**rewritten, &stats).empty());

    for (PreemptionMode mode : kModes) {
      ExecOptions exec;
      exec.inference.preemption = mode;
      Result<PlanOutput> base = ExecutePlan(*baseline, rdb.db(), exec);
      Result<PlanOutput> opt = ExecutePlan(**rewritten, rdb.db(), exec);
      // A sample may exhaust a kernel limit; it must do so identically.
      ASSERT_EQ(base.ok(), opt.ok())
          << "baseline: " << base.status() << "\noptimized: " << opt.status()
          << "\n" << ExplainPlanTree(**rewritten, &stats);
      if (!base.ok()) {
        EXPECT_EQ(base.status().code(), opt.status().code());
        continue;
      }
      ASSERT_TRUE(base->relation.has_value());
      ASSERT_TRUE(opt->relation.has_value());
      EXPECT_EQ(ExtensionOf(*base->relation, exec.inference),
                ExtensionOf(*opt->relation, exec.inference))
          << "seed=" << GetParam() << " sample=" << sample << " mode="
          << PreemptionModeToString(mode) << "\n"
          << ExplainPlanTree(**rewritten, &stats);
    }
  }
}

TEST_P(PlanProperty, CachedExecutionMatchesUncached) {
  testing::RandomDatabase rdb(GetParam() + 777, {});
  MakeUnambiguousEverywhere(*rdb.relation());
  MakeSecondRelation(rdb, GetParam() + 778);
  Random rng(GetParam() + 779);

  for (int sample = 0; sample < 6; ++sample) {
    PlanPtr tree = RandomTree(rng, rdb.hierarchy(0), 3);
    Result<PlanPtr> plan = RewritePlan(std::move(tree), rdb.db());
    ASSERT_TRUE(plan.ok()) << plan.status();

    ExecOptions uncached;
    Result<PlanOutput> cold = ExecutePlan(**plan, rdb.db(), uncached);

    ExecOptions cached = uncached;
    cached.cache = &rdb.db().subsumption_cache();
    ExecStats first_stats, second_stats;
    Result<PlanOutput> first =
        ExecutePlan(**plan, rdb.db(), cached, &first_stats);
    Result<PlanOutput> second =
        ExecutePlan(**plan, rdb.db(), cached, &second_stats);

    ASSERT_EQ(cold.ok(), first.ok());
    ASSERT_EQ(cold.ok(), second.ok());
    if (!cold.ok()) continue;
    InferenceOptions inference;
    std::vector<Item> expected = ExtensionOf(*cold->relation, inference);
    EXPECT_EQ(expected, ExtensionOf(*first->relation, inference));
    EXPECT_EQ(expected, ExtensionOf(*second->relation, inference));
    // Base relations were untouched between runs, so every graph the
    // second run looked up was already cached.
    if (first_stats.graph_cache_misses > 0) {
      EXPECT_EQ(second_stats.graph_cache_misses, 0u);
      EXPECT_GT(second_stats.graph_cache_hits, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanProperty, ::testing::Range<uint64_t>(0, 8));

TEST(PlanDigestTest, IdenticalShapesDigestEqually) {
  PlanPtr a = MakeConsolidate(MakeSelect(MakeScan("r"), 0, 3, "a0", "n"));
  PlanPtr b = MakeConsolidate(MakeSelect(MakeScan("r"), 0, 3, "a0", "n"));
  EXPECT_EQ(PlanDigest(*a), PlanDigest(*b));
  EXPECT_EQ(PlanDigest(*a).size(), 16u);  // 16 hex chars
}

TEST(PlanDigestTest, DistinctShapesDigestDistinctly) {
  std::vector<PlanPtr> shapes;
  shapes.push_back(MakeScan("r"));
  shapes.push_back(MakeScan("s"));
  shapes.push_back(MakeSelect(MakeScan("r"), 0, 3, "a0", "n"));
  shapes.push_back(MakeConsolidate(MakeScan("r")));
  shapes.push_back(MakeNaturalJoin(MakeScan("r"), MakeScan("s")));
  shapes.push_back(MakeProject(MakeScan("r"), {0}));
  std::vector<std::string> digests;
  for (const PlanPtr& shape : shapes) digests.push_back(PlanDigest(*shape));
  std::sort(digests.begin(), digests.end());
  EXPECT_EQ(std::unique(digests.begin(), digests.end()), digests.end());
}

TEST(PlanDigestTest, StableAcrossStorageAndThreadCount) {
  // The digest hashes plan structure only, so the same statement compiled
  // under either storage layout and any worker count identifies the same
  // plan — slow-query log and sys.queries entries stay correlatable.
  const StorageKind saved = DefaultStorageKind();
  std::vector<std::string> digests;
  for (const char* storage : {"row", "columnar"}) {
    for (const char* threads : {"1", "4"}) {
      hql::Executor exec;
      ASSERT_TRUE(exec.Execute(StrCat("SET STORAGE ", storage, ";")).ok());
      ASSERT_TRUE(exec.Execute(StrCat("SET THREADS ", threads, ";")).ok());
      ASSERT_TRUE(exec.Execute(R"(
        CREATE HIERARCHY h;
        CREATE CLASS c IN h;
        CREATE INSTANCE i IN h UNDER c;
        CREATE RELATION r (a: h);
        ASSERT r(ALL c);
      )").ok());
      ASSERT_TRUE(exec.Execute("SELECT * FROM r WHERE a = ALL c;").ok());
      digests.push_back(
          exec.query_history().Snapshot().back()->plan_digest);
    }
  }
  SetDefaultStorageKind(saved);
  ASSERT_EQ(digests.size(), 4u);
  EXPECT_FALSE(digests[0].empty());
  for (const std::string& digest : digests) EXPECT_EQ(digest, digests[0]);
}

}  // namespace
}  // namespace plan
}  // namespace hirel

// Tests for the appendix's alternative preemption semantics, including the
// worked Patricia/Pamela cases and cross-mode comparisons.

#include <gtest/gtest.h>

#include "core/conflict.h"
#include "core/consolidate.h"
#include "core/explicate.h"
#include "core/inference.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::FlyingFixture;

InferenceOptions Mode(PreemptionMode mode) {
  InferenceOptions options;
  options.preemption = mode;
  return options;
}

TEST(PreemptionTest, OffPathIsTheDefaultAndResolvesPatricia) {
  FlyingFixture f;
  EXPECT_EQ(InferTruth(*f.flies, {f.patricia}).value(), Truth::kPositive);
}

TEST(PreemptionTest, OnPathPatriciaIsConflicted) {
  // "on-path preemption would suggest that since Patricia is a Galapagos
  // penguin, it may or may not be able to fly, in spite of its being an
  // amazing flying penguin, and in spite of nothing having been explicitly
  // stated about Galapagos penguins!"
  FlyingFixture f;
  Result<Truth> r =
      InferTruth(*f.flies, {f.patricia}, Mode(PreemptionMode::kOnPath));
  EXPECT_TRUE(r.status().IsConflict());
}

TEST(PreemptionTest, OnPathAgreesWithOffPathElsewhere) {
  FlyingFixture f;
  for (NodeId atom : {f.tweety, f.paul, f.pamela, f.peter}) {
    EXPECT_EQ(
        InferTruth(*f.flies, {atom}, Mode(PreemptionMode::kOnPath)).value(),
        InferTruth(*f.flies, {atom}).value())
        << f.animal->NodeName(atom);
  }
}

TEST(PreemptionTest, NoPreemptionConflictsOnAnyMixedApplicables) {
  // Under no-preemption even Paul conflicts: bird+ and penguin- both bind.
  FlyingFixture f;
  Result<Truth> paul =
      InferTruth(*f.flies, {f.paul}, Mode(PreemptionMode::kNone));
  EXPECT_TRUE(paul.status().IsConflict());
  // Tweety has only bird+ applicable: fine in all modes.
  EXPECT_EQ(
      InferTruth(*f.flies, {f.tweety}, Mode(PreemptionMode::kNone)).value(),
      Truth::kPositive);
}

TEST(PreemptionTest, RedundantEdgeRetainedMakesPamelaConflicted) {
  // Appendix: "a redundant link in the hierarchy of Fig. 1 could be used
  // to state that Pamela is a Penguin. Since all immediate predecessors of
  // a node in its tuple-binding graph are involved ... there would be a
  // conflict at Pamela."
  Database db;
  Hierarchy* animal =
      db.CreateHierarchy("animal",
                         HierarchyOptions{.keep_redundant_edges = true})
          .value();
  NodeId bird = animal->AddClass("bird").value();
  NodeId penguin = animal->AddClass("penguin", bird).value();
  NodeId afp = animal->AddClass("afp", penguin).value();
  NodeId pamela = animal->AddInstance(Value::String("pamela"), afp).value();
  // The redundant direct edge penguin -> pamela.
  ASSERT_TRUE(animal->AddEdge(penguin, pamela).ok());

  HierarchicalRelation* flies =
      db.CreateRelation("flies", {{"who", "animal"}}).value();
  ASSERT_TRUE(flies->Insert({bird}, Truth::kPositive).ok());
  ASSERT_TRUE(flies->Insert({penguin}, Truth::kNegative).ok());
  ASSERT_TRUE(flies->Insert({afp}, Truth::kPositive).ok());

  // On-path semantics (redundant edges retained): pamela is conflicted.
  Result<Truth> r =
      InferTruth(*flies, {pamela}, Mode(PreemptionMode::kOnPath));
  EXPECT_TRUE(r.status().IsConflict());
}

TEST(PreemptionTest, OffPathHierarchyDropsThatRedundantEdge) {
  // With the default options the same AddEdge is a no-op, so Pamela stays
  // unambiguous — the representation-level guarantee off-path relies on.
  FlyingFixture f;
  ASSERT_TRUE(f.animal->AddEdge(f.penguin, f.pamela).ok());
  EXPECT_FALSE(f.animal->dag().HasEdge(f.penguin, f.pamela));
  EXPECT_EQ(InferTruth(*f.flies, {f.pamela}).value(), Truth::kPositive);
}

TEST(PreemptionTest, PreferenceEdgesResolveMultipleInheritanceConflict) {
  // Appendix: "whenever there is a conflict at a node ... the conflict may
  // be resolved through the special edge."
  FlyingFixture f;
  ASSERT_TRUE(f.flies->Insert({f.galapagos}, Truth::kNegative).ok());
  ASSERT_TRUE(
      InferTruth(*f.flies, {f.patricia}).status().IsConflict());
  // Prefer the AFP reading over the galapagos reading.
  ASSERT_TRUE(f.animal->AddPreferenceEdge(f.galapagos, f.afp).ok());
  EXPECT_EQ(InferTruth(*f.flies, {f.patricia}).value(), Truth::kPositive);
  // And the database is consistent again.
  EXPECT_TRUE(CheckAmbiguity(*f.flies).ok());
}

TEST(PreemptionTest, PreferenceEdgeOppositeDirection) {
  FlyingFixture f;
  ASSERT_TRUE(f.flies->Insert({f.galapagos}, Truth::kNegative).ok());
  ASSERT_TRUE(f.animal->AddPreferenceEdge(f.afp, f.galapagos).ok());
  EXPECT_EQ(InferTruth(*f.flies, {f.patricia}).value(), Truth::kNegative);
}

TEST(PreemptionTest, ConsolidateUnderNoPreemption) {
  // Under no-preemption, a more specific tuple with the OPPOSITE truth
  // value cannot override, so the only consistent relations are those
  // whose applicable sets agree; redundancy collapses to "any applicable
  // tuple of the same truth".
  Database db;
  Hierarchy* h = db.CreateHierarchy("d").value();
  NodeId a = h->AddClass("a").value();
  NodeId b = h->AddClass("b", a).value();
  HierarchicalRelation* r = db.CreateRelation("r", {{"v", "d"}}).value();
  ASSERT_TRUE(r->Insert({a}, Truth::kPositive).ok());
  ASSERT_TRUE(r->Insert({b}, Truth::kPositive).ok());
  EXPECT_EQ(ConsolidateInPlace(*r, Mode(PreemptionMode::kNone)).value(), 1u);
  EXPECT_EQ(r->size(), 1u);
}

TEST(PreemptionTest, ExtensionUnderDifferentModesCanDiffer) {
  FlyingFixture f;
  ExplicateOptions off;
  ExplicateOptions on;
  on.inference = Mode(PreemptionMode::kOnPath);
  std::vector<Item> ext_off = Extension(*f.flies, off).value();
  // On-path explication: the paper's algorithm processes most specific
  // first, so Patricia is claimed by the AFP tuple before the conflict
  // would be observed; the extension is computed, but inference at
  // Patricia conflicts. We assert the *inference-level* disagreement.
  EXPECT_TRUE(InferTruth(*f.flies, {f.patricia},
                         Mode(PreemptionMode::kOnPath))
                  .status()
                  .IsConflict());
  EXPECT_EQ(ext_off.size(), 4u);
}

}  // namespace
}  // namespace hirel

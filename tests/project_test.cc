#include "algebra/project.h"

#include <gtest/gtest.h>

#include "core/explicate.h"
#include "flat/flat_ops.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::ElephantFixture;
using testing::RespectsFixture;

void ExpectProjectMatchesFlat(const HierarchicalRelation& relation,
                              const std::vector<size_t>& keep) {
  HierarchicalRelation projected = Project(relation, keep).value();
  std::vector<Item> hierarchical = Extension(projected).value();

  FlatRelation flat = FlatRelation::FromRows("f", relation.schema(),
                                             Extension(relation).value())
                          .value();
  FlatRelation expected = FlatProject(flat, keep).value();
  EXPECT_EQ(hierarchical, expected.Rows());
}

TEST(ProjectTest, SchemaFollowsKeepList) {
  RespectsFixture f;
  HierarchicalRelation projected = Project(*f.respects, std::vector<size_t>{1, 0}).value();
  EXPECT_EQ(projected.schema().size(), 2u);
  EXPECT_EQ(projected.schema().name(0), "whom");
  EXPECT_EQ(projected.schema().name(1), "who");
}

TEST(ProjectTest, RespectsOntoStudents) {
  RespectsFixture f;
  // Who respects anyone? Exactly the obsequious students.
  HierarchicalRelation projected =
      Project(*f.respects, std::vector<std::string>{"who"}).value();
  std::vector<Item> extension = Extension(projected).value();
  EXPECT_EQ(extension, (std::vector<Item>{{f.john}}));
  ExpectProjectMatchesFlat(*f.respects, {0});
}

TEST(ProjectTest, RespectsOntoTeachers) {
  RespectsFixture f;
  // Who is respected by someone? All teachers (by john).
  ExpectProjectMatchesFlat(*f.respects, {1});
}

TEST(ProjectTest, CancelledMemberBecomesNegativeCandidate) {
  // R(student, teacher): obsequious students respect all teachers, but
  // john respects nobody. The projection onto students must keep the
  // class-level positive and a john-level negative.
  Database db;
  Hierarchy* student = db.CreateHierarchy("student").value();
  NodeId obsequious = student->AddClass("obsequious").value();
  NodeId john = student->AddInstance(Value::String("john"), obsequious)
                    .value();
  NodeId pat = student->AddInstance(Value::String("pat"), obsequious)
                   .value();
  Hierarchy* teacher = db.CreateHierarchy("teacher").value();
  NodeId wendy =
      teacher->AddInstance(Value::String("wendy"), teacher->root()).value();
  HierarchicalRelation* r =
      db.CreateRelation("r", {{"who", "student"}, {"whom", "teacher"}})
          .value();
  ASSERT_TRUE(r->Insert({obsequious, teacher->root()}, Truth::kPositive).ok());
  ASSERT_TRUE(r->Insert({john, teacher->root()}, Truth::kNegative).ok());

  HierarchicalRelation projected = Project(*r, std::vector<size_t>{0}).value();
  EXPECT_EQ(projected.TruthAt({obsequious}), Truth::kPositive);
  EXPECT_EQ(projected.TruthAt({john}), Truth::kNegative);
  std::vector<Item> extension = Extension(projected).value();
  EXPECT_EQ(extension, (std::vector<Item>{{pat}}));
  (void)wendy;
  ExpectProjectMatchesFlat(*r, {0});
}

TEST(ProjectTest, Fig11JoinThenProjectBackLosesNothing) {
  ElephantFixture f;
  // Explicit round trip is covered in join_test; here: projecting the
  // color relation onto (animal, color) (identity) and onto (animal).
  ExpectProjectMatchesFlat(*f.colors, {0, 1});
  ExpectProjectMatchesFlat(*f.colors, {0});
  ExpectProjectMatchesFlat(*f.colors, {1});
  ExpectProjectMatchesFlat(*f.enclosure, {0});
  ExpectProjectMatchesFlat(*f.enclosure, {1});
}

TEST(ProjectTest, InvalidArguments) {
  RespectsFixture f;
  EXPECT_TRUE(Project(*f.respects, std::vector<size_t>{5}).status().IsInvalidArgument());
  EXPECT_TRUE(Project(*f.respects, std::vector<size_t>{0, 0}).status().IsInvalidArgument());
  EXPECT_TRUE(Project(*f.respects, std::vector<std::string>{"zzz"})
                  .status()
                  .IsNotFound());
}

TEST(ProjectTest, EmptyRelationProjectsToEmpty) {
  RespectsFixture f;
  f.respects->Clear();
  HierarchicalRelation projected = Project(*f.respects, std::vector<size_t>{0}).value();
  EXPECT_TRUE(projected.empty());
}

TEST(ProjectTest, WitnessProbeCap) {
  RespectsFixture f;
  ProjectOptions options;
  options.max_witness_probes = 0;
  Result<HierarchicalRelation> r = Project(*f.respects, std::vector<size_t>{0}, options);
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST(ProjectTest, MatchesFlatOnRandomTwoAttributeDatabases) {
  for (uint64_t seed = 300; seed < 320; ++seed) {
    testing::RandomFixtureOptions options;
    options.num_attributes = 2;
    options.num_classes = 6;
    options.num_instances = 8;
    options.num_tuples = 6;
    testing::RandomDatabase rdb(seed, options);
    ExpectProjectMatchesFlat(*rdb.relation(), {0});
    ExpectProjectMatchesFlat(*rdb.relation(), {1});
  }
}

}  // namespace
}  // namespace hirel

// Property-based tests: on randomized consistent databases, every
// hierarchical operator must commute with explication, i.e.
// ext(op_h(R, S)) == op_flat(ext(R), ext(S)), and the two new operators
// must preserve the extension. These are the semantic guarantees Section 3
// states ("the semantics of relational operators is not altered even in
// the case of hierarchical relations").

#include <gtest/gtest.h>

#include "algebra/join.h"
#include "algebra/project.h"
#include "algebra/select.h"
#include "algebra/setops.h"
#include "common/random.h"
#include "core/conflict.h"
#include "core/consolidate.h"
#include "core/explicate.h"
#include "core/inference.h"
#include "flat/flat_ops.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

class OperatorProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  /// Builds a second consistent relation over the same single-attribute
  /// domain as `rdb`.
  HierarchicalRelation* MakeSecondRelation(testing::RandomDatabase& rdb,
                                           uint64_t seed) {
    HierarchicalRelation* s =
        rdb.db().CreateRelation("s", {{"a0", "domain0"}}).value();
    Random rng(seed);
    std::vector<NodeId> nodes = rdb.hierarchy(0)->Nodes();
    for (int i = 0; i < 6; ++i) {
      Item item{nodes[rng.Index(nodes.size())]};
      Truth truth =
          rng.Bernoulli(0.4) ? Truth::kNegative : Truth::kPositive;
      (void)s->Insert(item, truth);
    }
    while (!CheckAmbiguity(*s).ok()) {
      std::vector<TupleId> ids = s->TupleIds();
      EXPECT_FALSE(ids.empty());
      EXPECT_TRUE(s->Erase(ids.back()).ok());
    }
    return s;
  }

  FlatRelation Flatten(const HierarchicalRelation& r) {
    return FlatRelation::FromRows("flat", r.schema(), Extension(r).value())
        .value();
  }
};

TEST_P(OperatorProperty, ConsolidatePreservesExtensionAndIsMinimal) {
  testing::RandomFixtureOptions options;
  options.num_tuples = 9;
  testing::RandomDatabase rdb(GetParam(), options);
  HierarchicalRelation* r = rdb.relation();
  std::vector<Item> before = Extension(*r).value();
  ASSERT_TRUE(ConsolidateInPlace(*r).ok());
  EXPECT_EQ(Extension(*r).value(), before);
  // Minimality: no surviving tuple is redundant.
  for (TupleId id : r->TupleIds()) {
    EXPECT_FALSE(IsRedundant(*r, id).value());
  }
}

TEST_P(OperatorProperty, ExplicateEqualsBruteForceInference) {
  testing::RandomDatabase rdb(GetParam() + 5000, {});
  HierarchicalRelation* r = rdb.relation();
  std::vector<Item> extension = Extension(*r).value();
  std::vector<Item> brute;
  for (NodeId atom : rdb.hierarchy(0)->Instances()) {
    if (Holds(*r, {atom}).value()) brute.push_back({atom});
  }
  std::sort(brute.begin(), brute.end());
  EXPECT_EQ(extension, brute);
}

TEST_P(OperatorProperty, SelectCommutesWithExplication) {
  testing::RandomDatabase rdb(GetParam() + 10000, {});
  HierarchicalRelation* r = rdb.relation();
  FlatRelation flat = Flatten(*r);
  Random rng(GetParam() + 1);
  std::vector<NodeId> nodes = rdb.hierarchy(0)->Nodes();
  for (int probe = 0; probe < 4; ++probe) {
    NodeId node = nodes[rng.Index(nodes.size())];
    HierarchicalRelation selected = SelectEquals(*r, 0, node).value();
    FlatRelation expected = FlatSelectEquals(flat, 0, node).value();
    EXPECT_EQ(Extension(selected).value(), expected.Rows())
        << "selecting " << rdb.hierarchy(0)->NodeName(node);
  }
}

TEST_P(OperatorProperty, SetOpsCommuteWithExplication) {
  testing::RandomDatabase rdb(GetParam() + 20000, {});
  HierarchicalRelation* r = rdb.relation();
  HierarchicalRelation* s = MakeSecondRelation(rdb, GetParam() * 17 + 3);
  FlatRelation rf = Flatten(*r);
  FlatRelation sf = Flatten(*s);

  EXPECT_EQ(Extension(Union(*r, *s).value()).value(),
            FlatUnion(rf, sf).value().Rows());
  EXPECT_EQ(Extension(Intersect(*r, *s).value()).value(),
            FlatIntersect(rf, sf).value().Rows());
  EXPECT_EQ(Extension(Difference(*r, *s).value()).value(),
            FlatDifference(rf, sf).value().Rows());
  EXPECT_EQ(Extension(Difference(*s, *r).value()).value(),
            FlatDifference(sf, rf).value().Rows());
}

TEST_P(OperatorProperty, JoinCommutesWithExplication) {
  testing::RandomDatabase rdb(GetParam() + 30000, {});
  HierarchicalRelation* r = rdb.relation();
  HierarchicalRelation* s = MakeSecondRelation(rdb, GetParam() * 13 + 1);
  FlatRelation rf = Flatten(*r);
  FlatRelation sf = Flatten(*s);
  HierarchicalRelation joined = JoinOn(*r, *s, {{0, 0}}).value();
  FlatRelation expected = FlatJoinOn(rf, sf, {{0, 0}}).value();
  EXPECT_EQ(Extension(joined).value(), expected.Rows());
}

TEST_P(OperatorProperty, ProjectCommutesWithExplication) {
  testing::RandomFixtureOptions options;
  options.num_attributes = 2;
  options.num_classes = 5;
  options.num_instances = 7;
  options.num_tuples = 5;
  testing::RandomDatabase rdb(GetParam() + 40000, options);
  HierarchicalRelation* r = rdb.relation();
  FlatRelation flat = Flatten(*r);
  for (size_t keep : {size_t{0}, size_t{1}}) {
    HierarchicalRelation projected = Project(*r, std::vector<size_t>{keep}).value();
    FlatRelation expected = FlatProject(flat, {keep}).value();
    EXPECT_EQ(Extension(projected).value(), expected.Rows())
        << "keeping attribute " << keep;
  }
}

TEST_P(OperatorProperty, DerivedRelationsAreConsistent) {
  // Operator results must themselves satisfy the ambiguity constraint.
  testing::RandomDatabase rdb(GetParam() + 50000, {});
  HierarchicalRelation* r = rdb.relation();
  HierarchicalRelation* s = MakeSecondRelation(rdb, GetParam() * 11 + 9);
  EXPECT_TRUE(CheckAmbiguity(Union(*r, *s).value()).ok());
  EXPECT_TRUE(CheckAmbiguity(Intersect(*r, *s).value()).ok());
  EXPECT_TRUE(CheckAmbiguity(Difference(*r, *s).value()).ok());
}

TEST_P(OperatorProperty, MultiAttributeConsolidateAndConflicts) {
  testing::RandomFixtureOptions options;
  options.num_attributes = 2;
  options.num_classes = 5;
  options.num_instances = 6;
  options.num_tuples = 6;
  testing::RandomDatabase rdb(GetParam() + 60000, options);
  HierarchicalRelation* r = rdb.relation();
  EXPECT_TRUE(CheckAmbiguity(*r).ok());
  std::vector<Item> before = Extension(*r).value();
  ASSERT_TRUE(ConsolidateInPlace(*r).ok());
  EXPECT_EQ(Extension(*r).value(), before);
  EXPECT_TRUE(CheckAmbiguity(*r).ok());
}


TEST_P(OperatorProperty, TwoAttributeSetOpsCommuteWithExplication) {
  testing::RandomFixtureOptions options;
  options.num_attributes = 2;
  options.num_classes = 5;
  options.num_instances = 6;
  options.num_tuples = 5;
  testing::RandomDatabase rdb(GetParam() + 70000, options);
  HierarchicalRelation* r = rdb.relation();

  // A second consistent relation over the same two-attribute schema.
  HierarchicalRelation* s = rdb.db()
                                .CreateRelation("s2", {{"a0", "domain0"},
                                                       {"a1", "domain1"}})
                                .value();
  Random rng(GetParam() * 23 + 5);
  std::vector<NodeId> n0 = rdb.hierarchy(0)->Nodes();
  std::vector<NodeId> n1 = rdb.hierarchy(1)->Nodes();
  for (int i = 0; i < 5; ++i) {
    Item item{n0[rng.Index(n0.size())], n1[rng.Index(n1.size())]};
    Truth truth = rng.Bernoulli(0.4) ? Truth::kNegative : Truth::kPositive;
    (void)s->Insert(item, truth);
  }
  while (!CheckAmbiguity(*s).ok()) {
    std::vector<TupleId> ids = s->TupleIds();
    ASSERT_FALSE(ids.empty());
    ASSERT_TRUE(s->Erase(ids.back()).ok());
  }

  FlatRelation rf = Flatten(*r);
  FlatRelation sf = Flatten(*s);
  EXPECT_EQ(Extension(Union(*r, *s).value()).value(),
            FlatUnion(rf, sf).value().Rows());
  EXPECT_EQ(Extension(Intersect(*r, *s).value()).value(),
            FlatIntersect(rf, sf).value().Rows());
  EXPECT_EQ(Extension(Difference(*r, *s).value()).value(),
            FlatDifference(rf, sf).value().Rows());

  // And a join on the first attribute (schemas share both hierarchies).
  HierarchicalRelation joined = JoinOn(*r, *s, {{0, 0}}).value();
  FlatRelation expected = FlatJoinOn(rf, sf, {{0, 0}}).value();
  EXPECT_EQ(Extension(joined).value(), expected.Rows());
}

TEST_P(OperatorProperty, SelectWhereCommutesWithExplication) {
  testing::RandomDatabase rdb(GetParam() + 80000, {});
  HierarchicalRelation* r = rdb.relation();
  FlatRelation flat = Flatten(*r);
  auto predicate = [](const Value& v) {
    return !v.AsString().empty() && v.AsString().back() % 2 == 0;
  };
  HierarchicalRelation selected = SelectWhere(*r, 0, predicate).value();
  FlatRelation expected = FlatSelectWhere(flat, 0, predicate).value();
  EXPECT_EQ(Extension(selected).value(), expected.Rows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorProperty,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace hirel

#include "common/random.h"

#include <gtest/gtest.h>

#include <set>

namespace hirel {
namespace {

TEST(RandomTest, DeterministicForSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  bool differed = false;
  for (int i = 0; i < 16 && !differed; ++i) {
    differed = a.Next() != b.Next();
  }
  EXPECT_TRUE(differed);
}

TEST(RandomTest, UniformStaysInBound) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_GT(hits, 2500);
  EXPECT_LT(hits, 3500);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, ShufflePreservesElements) {
  Random rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

}  // namespace
}  // namespace hirel

#include "core/hierarchical_relation.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::FlyingFixture;

TEST(RelationTest, InsertAndLookup) {
  FlyingFixture f;
  EXPECT_EQ(f.flies->size(), 4u);
  EXPECT_EQ(f.flies->TruthAt({f.bird}), Truth::kPositive);
  EXPECT_EQ(f.flies->TruthAt({f.penguin}), Truth::kNegative);
  EXPECT_EQ(f.flies->TruthAt({f.tweety}), std::nullopt);
  ASSERT_TRUE(f.flies->FindItem({f.peter}).has_value());
}

TEST(RelationTest, DuplicateTupleRejected) {
  FlyingFixture f;
  Result<TupleId> r = f.flies->Insert({f.bird}, Truth::kPositive);
  EXPECT_TRUE(r.status().IsAlreadyExists());
}

TEST(RelationTest, ContradictoryTupleRejected) {
  FlyingFixture f;
  Result<TupleId> r = f.flies->Insert({f.bird}, Truth::kNegative);
  EXPECT_TRUE(r.status().IsIntegrityViolation());
}

TEST(RelationTest, UpsertReplacesTruth) {
  FlyingFixture f;
  ASSERT_TRUE(f.flies->Upsert({f.bird}, Truth::kNegative).ok());
  EXPECT_EQ(f.flies->TruthAt({f.bird}), Truth::kNegative);
  EXPECT_EQ(f.flies->size(), 4u);
  ASSERT_TRUE(f.flies->Upsert({f.canary}, Truth::kPositive).ok());
  EXPECT_EQ(f.flies->size(), 5u);
}

TEST(RelationTest, ArityAndLivenessValidated) {
  FlyingFixture f;
  EXPECT_TRUE(
      f.flies->Insert({f.bird, f.bird}, Truth::kPositive).status()
          .IsInvalidArgument());
  EXPECT_TRUE(f.flies->Insert({kInvalidNode}, Truth::kPositive)
                  .status()
                  .IsInvalidArgument());
}

TEST(RelationTest, EraseByIdAndItem) {
  FlyingFixture f;
  std::optional<TupleId> id = f.flies->FindItem({f.peter});
  ASSERT_TRUE(id.has_value());
  ASSERT_TRUE(f.flies->Erase(*id).ok());
  EXPECT_FALSE(f.flies->alive(*id));
  EXPECT_EQ(f.flies->size(), 3u);
  EXPECT_TRUE(f.flies->Erase(*id).IsNotFound());
  ASSERT_TRUE(f.flies->EraseItem({f.afp}).ok());
  EXPECT_TRUE(f.flies->EraseItem({f.afp}).IsNotFound());
  // Item can be re-inserted after erasure, with either truth.
  EXPECT_TRUE(f.flies->Insert({f.afp}, Truth::kNegative).ok());
}

TEST(RelationTest, TupleIdsSkipDead) {
  FlyingFixture f;
  std::vector<TupleId> before = f.flies->TupleIds();
  ASSERT_TRUE(f.flies->Erase(before[1]).ok());
  std::vector<TupleId> after = f.flies->TupleIds();
  EXPECT_EQ(after.size(), before.size() - 1);
  for (TupleId id : after) EXPECT_NE(id, before[1]);
}

TEST(RelationTest, TuplesSubsumingFindsApplicable) {
  FlyingFixture f;
  // Paul (a galapagos penguin): bird+ and penguin- apply; afp+ and peter+
  // do not.
  std::vector<TupleId> applicable = f.flies->TuplesSubsuming({f.paul});
  ASSERT_EQ(applicable.size(), 2u);
  EXPECT_EQ(f.flies->tuple(applicable[0]).item, (Item{f.bird}));
  EXPECT_EQ(f.flies->tuple(applicable[1]).item, (Item{f.penguin}));
  // Patricia: three tuples apply (bird, penguin, afp).
  EXPECT_EQ(f.flies->TuplesSubsuming({f.patricia}).size(), 3u);
  // Peter: all four.
  EXPECT_EQ(f.flies->TuplesSubsuming({f.peter}).size(), 4u);
}

TEST(RelationTest, TuplesSubsumedBy) {
  FlyingFixture f;
  // Under "bird": bird+, penguin-, afp+, peter+ are all subsumed.
  EXPECT_EQ(f.flies->TuplesSubsumedBy({f.bird}).size(), 4u);
  EXPECT_EQ(f.flies->TuplesSubsumedBy({f.penguin}).size(), 3u);
  EXPECT_EQ(f.flies->TuplesSubsumedBy({f.peter}).size(), 1u);
}

TEST(RelationTest, ClearEmptiesRelation) {
  FlyingFixture f;
  f.flies->Clear();
  EXPECT_TRUE(f.flies->empty());
  EXPECT_TRUE(f.flies->TupleIds().empty());
  EXPECT_TRUE(f.flies->Insert({f.bird}, Truth::kNegative).ok());
}

TEST(RelationTest, CoveredAtomCountUsesPositiveTuplesOnly) {
  FlyingFixture f;
  // bird covers 5 instances; afp covers 3; peter covers 1. penguin- is
  // ignored. (Overlap is intentionally not deduplicated: this is a storage
  // upper bound.)
  EXPECT_EQ(f.flies->CoveredAtomCount(), 9u);
}

TEST(RelationTest, ToStringShowsQuantifiedClasses) {
  FlyingFixture f;
  std::string s = f.flies->ToString();
  EXPECT_NE(s.find("+ ALL bird"), std::string::npos);
  EXPECT_NE(s.find("- ALL penguin"), std::string::npos);
  EXPECT_NE(s.find("+ peter"), std::string::npos);
}

TEST(RelationTest, ApproxBytesPositive) {
  FlyingFixture f;
  EXPECT_GT(f.flies->ApproxBytes(), 0u);
}

// The inverted index behind TuplesSubsuming/TuplesSubsumedBy must agree
// with a brute-force scan, including after erasures.
TEST(RelationTest, InvertedIndexMatchesBruteForce) {
  for (uint64_t seed = 40; seed < 55; ++seed) {
    testing::RandomFixtureOptions options;
    options.num_attributes = 2;
    options.num_classes = 6;
    options.num_instances = 8;
    options.num_tuples = 8;
    testing::RandomDatabase rdb(seed, options);
    HierarchicalRelation* r = rdb.relation();
    // Erase a tuple to exercise index maintenance.
    std::vector<TupleId> ids = r->TupleIds();
    if (ids.size() > 2) {
      ASSERT_TRUE(r->Erase(ids[ids.size() / 2]).ok());
    }

    auto brute_subsuming = [&](const Item& item) {
      std::vector<TupleId> out;
      for (TupleId id : r->TupleIds()) {
        if (ItemSubsumes(r->schema(), r->tuple(id).item, item)) {
          out.push_back(id);
        }
      }
      return out;
    };
    auto brute_subsumed = [&](const Item& item) {
      std::vector<TupleId> out;
      for (TupleId id : r->TupleIds()) {
        if (ItemSubsumes(r->schema(), item, r->tuple(id).item)) {
          out.push_back(id);
        }
      }
      return out;
    };

    Random rng(seed * 3 + 1);
    for (int probe = 0; probe < 10; ++probe) {
      std::vector<NodeId> n0 = rdb.hierarchy(0)->Nodes();
      std::vector<NodeId> n1 = rdb.hierarchy(1)->Nodes();
      Item item{n0[rng.Index(n0.size())], n1[rng.Index(n1.size())]};
      EXPECT_EQ(r->TuplesSubsuming(item), brute_subsuming(item))
          << "seed " << seed;
      EXPECT_EQ(r->TuplesSubsumedBy(item), brute_subsumed(item))
          << "seed " << seed;
    }
  }
}

TEST(RelationTest, PreemptionModeNames) {
  EXPECT_STREQ(PreemptionModeToString(PreemptionMode::kOffPath), "off-path");
  EXPECT_STREQ(PreemptionModeToString(PreemptionMode::kOnPath), "on-path");
  EXPECT_STREQ(PreemptionModeToString(PreemptionMode::kNone), "none");
}

}  // namespace
}  // namespace hirel

#include "algebra/rename.h"

#include <gtest/gtest.h>

#include "algebra/join.h"
#include "core/explicate.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::ElephantFixture;
using testing::RespectsFixture;

TEST(RenameTest, RenamesListedAttributesOnly) {
  RespectsFixture f;
  HierarchicalRelation renamed =
      Rename(*f.respects, {{"who", "admirer"}}).value();
  EXPECT_EQ(renamed.schema().name(0), "admirer");
  EXPECT_EQ(renamed.schema().name(1), "whom");
  EXPECT_EQ(renamed.size(), f.respects->size());
  EXPECT_EQ(Extension(renamed).value(), Extension(*f.respects).value());
}

TEST(RenameTest, MultipleRenamesAndSwaps) {
  RespectsFixture f;
  HierarchicalRelation swapped =
      Rename(*f.respects, {{"who", "whom"}, {"whom", "who"}}).value();
  EXPECT_EQ(swapped.schema().name(0), "whom");
  EXPECT_EQ(swapped.schema().name(1), "who");
}

TEST(RenameTest, UnknownAttributeFails) {
  RespectsFixture f;
  EXPECT_TRUE(
      Rename(*f.respects, {{"nobody", "x"}}).status().IsNotFound());
}

TEST(RenameTest, CollisionFails) {
  RespectsFixture f;
  EXPECT_TRUE(
      Rename(*f.respects, {{"who", "whom"}}).status().IsAlreadyExists());
}

TEST(RenameTest, EnablesSelfJoin) {
  // The classical use: join a relation with itself on different roles.
  ElephantFixture f;
  HierarchicalRelation renamed =
      Rename(*f.colors, {{"color", "other_color"}}).value();
  // Natural join now only shares "animal": pairs each animal's colors.
  HierarchicalRelation joined = NaturalJoin(*f.colors, renamed).value();
  ASSERT_EQ(joined.schema().size(), 3u);
  EXPECT_EQ(joined.schema().name(2), "other_color");
  // clyde: (dappled, dappled) is the only surviving pair.
  std::vector<Item> ext = Extension(joined).value();
  for (const Item& row : ext) {
    if (row[0] == f.clyde) {
      EXPECT_EQ(row[1], f.dappled);
      EXPECT_EQ(row[2], f.dappled);
    }
  }
}

}  // namespace
}  // namespace hirel

#include "rules/rule.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/explicate.h"
#include "core/inference.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::FlyingFixture;

/// Fig. 1 database plus an empty travels_far relation, the paper's own
/// example of what the Datalog layer should recover.
struct RulesFixture {
  RulesFixture() : engine(&zoo.db) {
    travels_far =
        zoo.db.CreateRelation("travels_far", {{"who", "animal"}}).value();
    grounded =
        zoo.db.CreateRelation("grounded", {{"who", "animal"}}).value();
  }
  FlyingFixture zoo;
  HierarchicalRelation* travels_far;
  HierarchicalRelation* grounded;
  RuleEngine engine;
};

TEST(RulesTest, TweetyCanTravelFar) {
  // "we lose the ability to infer automatically ... that Tweety can travel
  // far since flying things can travel far. However, through the use of
  // logic programming ... we are able to provide an even more powerful
  // inference mechanism."
  RulesFixture f;
  ASSERT_TRUE(f.engine.AddRule("travels_far(?x) :- flies(?x).").ok());
  size_t derived = f.engine.Evaluate().value();
  // ext(flies) = {tweety, pamela, patricia, peter}.
  EXPECT_EQ(derived, 4u);
  EXPECT_EQ(InferTruth(*f.travels_far, {f.zoo.tweety}).value(),
            Truth::kPositive);
  EXPECT_EQ(InferTruth(*f.travels_far, {f.zoo.paul}).value(),
            Truth::kNegative);
}

TEST(RulesTest, EvaluationIsIdempotent) {
  RulesFixture f;
  ASSERT_TRUE(f.engine.AddRule("travels_far(?x) :- flies(?x).").ok());
  ASSERT_TRUE(f.engine.Evaluate().ok());
  EXPECT_EQ(f.engine.Evaluate().value(), 0u);
}

TEST(RulesTest, ClassConstantConstrainsMembership) {
  RulesFixture f;
  // Only flying penguins travel far.
  ASSERT_TRUE(
      f.engine.AddRule("travels_far(?x) :- flies(?x), swims(ALL penguin)")
          .IsNotFound());  // no swims relation: parse-time validation
  ASSERT_TRUE(f.engine
                  .AddRule("travels_far(?x) :- flies(?x), "
                           "flies(ALL amazing_flying_penguin).")
                  .ok());
  // The second atom is a ground membership test... with a class constant
  // it matches any row within the class: pamela/patricia/peter satisfy it,
  // so the body holds and every flyer travels far.
  EXPECT_EQ(f.engine.Evaluate().value(), 4u);
}

TEST(RulesTest, VariableWithClassConstantFilter) {
  RulesFixture f;
  // travels_far(?x) for penguins only: join the class constraint onto ?x.
  ASSERT_TRUE(f.engine
                  .AddRule(
                      "travels_far(?x) :- flies(?x), jillish(ALL penguin, ?x)")
                  .IsNotFound());
  HierarchicalRelation* penguinhood =
      f.zoo.db.CreateRelation("penguinhood", {{"who", "animal"}}).value();
  ASSERT_TRUE(
      penguinhood->Insert({f.zoo.penguin}, Truth::kPositive).ok());
  ASSERT_TRUE(
      f.engine.AddRule("travels_far(?x) :- flies(?x), penguinhood(?x).")
          .ok());
  EXPECT_EQ(f.engine.Evaluate().value(), 3u);  // pamela, patricia, peter
  EXPECT_FALSE(f.travels_far->FindItem({f.zoo.tweety}).has_value());
}

TEST(RulesTest, NegationAsFailure) {
  RulesFixture f;
  HierarchicalRelation* birds =
      f.zoo.db.CreateRelation("is_bird", {{"who", "animal"}}).value();
  ASSERT_TRUE(birds->Insert({f.zoo.bird}, Truth::kPositive).ok());
  ASSERT_TRUE(
      f.engine.AddRule("grounded(?x) :- is_bird(?x), not flies(?x).").ok());
  EXPECT_EQ(f.engine.Evaluate().value(), 1u);
  EXPECT_TRUE(f.grounded->FindItem({f.zoo.paul}).has_value());
}

TEST(RulesTest, RecursiveRulesReachFixpoint) {
  // Transitive closure: the classic Datalog test.
  Database db;
  Hierarchy* node = db.CreateHierarchy("node").value();
  std::vector<NodeId> n;
  for (int i = 0; i < 5; ++i) {
    n.push_back(
        node->AddInstance(Value::String("n" + std::to_string(i))).value());
  }
  HierarchicalRelation* edge =
      db.CreateRelation("edge", {{"a", "node"}, {"b", "node"}}).value();
  HierarchicalRelation* path =
      db.CreateRelation("path", {{"a", "node"}, {"b", "node"}}).value();
  for (int i = 0; i + 1 < 5; ++i) {
    ASSERT_TRUE(edge->Insert({n[i], n[i + 1]}, Truth::kPositive).ok());
  }
  RuleEngine engine(&db);
  ASSERT_TRUE(engine.AddRule("path(?a, ?b) :- edge(?a, ?b).").ok());
  ASSERT_TRUE(
      engine.AddRule("path(?a, ?c) :- path(?a, ?b), edge(?b, ?c).").ok());
  EXPECT_EQ(engine.Evaluate().value(), 10u);  // C(5,2) ordered pairs
  EXPECT_TRUE(path->FindItem({n[0], n[4]}).has_value());
  EXPECT_FALSE(path->FindItem({n[4], n[0]}).has_value());
}

TEST(RulesTest, StratifiedNegationAcrossIdb) {
  RulesFixture f;
  HierarchicalRelation* birds =
      f.zoo.db.CreateRelation("is_bird", {{"who", "animal"}}).value();
  ASSERT_TRUE(birds->Insert({f.zoo.bird}, Truth::kPositive).ok());
  // Stratum 0: travels_far; stratum 1: grounded (negates an IDB).
  ASSERT_TRUE(f.engine.AddRule("travels_far(?x) :- flies(?x).").ok());
  ASSERT_TRUE(
      f.engine.AddRule("grounded(?x) :- is_bird(?x), not travels_far(?x).")
          .ok());
  ASSERT_TRUE(f.engine.Evaluate().ok());
  EXPECT_TRUE(f.grounded->FindItem({f.zoo.paul}).has_value());
  EXPECT_FALSE(f.grounded->FindItem({f.zoo.tweety}).has_value());
}

TEST(RulesTest, NonStratifiableProgramRejected) {
  RulesFixture f;
  ASSERT_TRUE(
      f.engine.AddRule("travels_far(?x) :- flies(?x), not grounded(?x).")
          .ok());
  ASSERT_TRUE(
      f.engine.AddRule("grounded(?x) :- flies(?x), not travels_far(?x).")
          .ok());
  EXPECT_TRUE(f.engine.Evaluate().status().IsInvalidArgument());
}

TEST(RulesTest, SafetyViolationsRejected) {
  RulesFixture f;
  // Head variable never bound positively.
  EXPECT_TRUE(f.engine.AddRule("travels_far(?y) :- flies(?x).")
                  .IsInvalidArgument());
  // Negated-atom variable never bound positively.
  EXPECT_TRUE(f.engine.AddRule("travels_far(?x) :- flies(?x), "
                               "not grounded(?y).")
                  .IsInvalidArgument());
  // Class constant in a negated atom.
  EXPECT_TRUE(f.engine.AddRule("travels_far(?x) :- flies(?x), "
                               "not grounded(ALL bird).")
                  .IsInvalidArgument());
}

TEST(RulesTest, FactRulesAndClassHeads) {
  RulesFixture f;
  // An unconditional class-level fact.
  ASSERT_TRUE(f.engine.AddRule("travels_far(ALL bird).").ok());
  EXPECT_EQ(f.engine.Evaluate().value(), 1u);
  EXPECT_EQ(f.travels_far->TruthAt({f.zoo.bird}), Truth::kPositive);
  // All birds now travel far, via class-level inference.
  EXPECT_EQ(InferTruth(*f.travels_far, {f.zoo.paul}).value(),
            Truth::kPositive);
}

TEST(RulesTest, ParseErrorsCarryContext) {
  RulesFixture f;
  EXPECT_TRUE(f.engine.ParseRule("travels_far(?x").status().IsParseError());
  EXPECT_TRUE(f.engine.ParseRule("nope(?x).").status().IsNotFound());
  EXPECT_TRUE(f.engine.ParseRule("travels_far(?x) :- flies(?x) garbage")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(
      f.engine.ParseRule("travels_far(?x, ?y) :- flies(?x).").status()
          .IsParseError());
}

TEST(RulesTest, ToStringRoundTripsShape) {
  RulesFixture f;
  Rule rule =
      f.engine.ParseRule("grounded(?x) :- flies(?x), not travels_far(?x).")
          .value();
  std::string text = rule.ToString(f.zoo.db);
  EXPECT_EQ(text, "grounded(?x) :- flies(?x), not travels_far(?x).");
  // The rendering reparses to an equivalent rule.
  EXPECT_TRUE(f.engine.ParseRule(text).ok());
}

TEST(RulesTest, DerivedFactCapEnforced) {
  RulesFixture f;
  ASSERT_TRUE(f.engine.AddRule("travels_far(?x) :- flies(?x).").ok());
  RuleOptions options;
  options.max_derived_facts = 2;
  EXPECT_TRUE(f.engine.Evaluate(options).status().IsResourceExhausted());
}

TEST(RulesTest, MultiAttributeJoinAcrossRelations) {
  // respected_flyer(?t) :- flies(?t), respects(?s, ?t): join over two
  // relations with a shared variable.
  Database db;
  Hierarchy* animal = db.CreateHierarchy("animal").value();
  NodeId bird = animal->AddClass("bird").value();
  NodeId tweety =
      animal->AddInstance(Value::String("tweety"), bird).value();
  NodeId rex = animal->AddInstance(Value::String("rex")).value();
  (void)rex;
  Hierarchy* person = db.CreateHierarchy("person").value();
  NodeId sam = person->AddInstance(Value::String("sam")).value();
  (void)sam;

  HierarchicalRelation* flies =
      db.CreateRelation("flies", {{"who", "animal"}}).value();
  ASSERT_TRUE(flies->Insert({bird}, Truth::kPositive).ok());
  HierarchicalRelation* admires = db.CreateRelation(
      "admires", {{"who", "person"}, {"what", "animal"}}).value();
  ASSERT_TRUE(
      admires->Insert({person->root(), bird}, Truth::kPositive).ok());
  HierarchicalRelation* respected =
      db.CreateRelation("respected_flyer", {{"what", "animal"}}).value();

  RuleEngine engine(&db);
  ASSERT_TRUE(
      engine.AddRule("respected_flyer(?t) :- flies(?t), admires(?s, ?t).")
          .ok());
  EXPECT_EQ(engine.Evaluate().value(), 1u);
  EXPECT_TRUE(respected->FindItem({tweety}).has_value());
}


// Property: on random edge relations, the recursive path program computes
// exactly graph reachability (checked against a brute-force closure).
class RulesProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RulesProperty, TransitiveClosureMatchesBruteForce) {
  Random rng(GetParam());
  constexpr size_t kNodes = 8;
  Database db;
  Hierarchy* node = db.CreateHierarchy("node").value();
  std::vector<NodeId> n;
  for (size_t i = 0; i < kNodes; ++i) {
    n.push_back(
        node->AddInstance(Value::Int(static_cast<int64_t>(i))).value());
  }
  HierarchicalRelation* edge =
      db.CreateRelation("edge", {{"a", "node"}, {"b", "node"}}).value();
  HierarchicalRelation* path =
      db.CreateRelation("path", {{"a", "node"}, {"b", "node"}}).value();
  bool adj[kNodes][kNodes] = {};
  for (size_t a = 0; a < kNodes; ++a) {
    for (size_t b = 0; b < kNodes; ++b) {
      if (a != b && rng.Bernoulli(0.2)) {
        adj[a][b] = true;
        ASSERT_TRUE(edge->Insert({n[a], n[b]}, Truth::kPositive).ok());
      }
    }
  }
  RuleEngine engine(&db);
  ASSERT_TRUE(engine.AddRule("path(?a, ?b) :- edge(?a, ?b).").ok());
  ASSERT_TRUE(
      engine.AddRule("path(?a, ?c) :- path(?a, ?b), edge(?b, ?c).").ok());
  ASSERT_TRUE(engine.Evaluate().ok());

  // Brute-force closure (Floyd-Warshall).
  bool reach[kNodes][kNodes];
  for (size_t a = 0; a < kNodes; ++a) {
    for (size_t b = 0; b < kNodes; ++b) reach[a][b] = adj[a][b];
  }
  for (size_t k = 0; k < kNodes; ++k) {
    for (size_t a = 0; a < kNodes; ++a) {
      for (size_t b = 0; b < kNodes; ++b) {
        reach[a][b] = reach[a][b] || (reach[a][k] && reach[k][b]);
      }
    }
  }
  for (size_t a = 0; a < kNodes; ++a) {
    for (size_t b = 0; b < kNodes; ++b) {
      EXPECT_EQ(path->FindItem({n[a], n[b]}).has_value(), reach[a][b])
          << "seed " << GetParam() << ": " << a << " -> " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RulesProperty,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace hirel

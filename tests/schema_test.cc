#include "types/schema.h"

#include <gtest/gtest.h>

namespace hirel {
namespace {

TEST(SchemaTest, AppendAndLookup) {
  Hierarchy animal("animal"), color("color");
  Schema s;
  ASSERT_TRUE(s.Append("who", &animal).ok());
  ASSERT_TRUE(s.Append("shade", &color).ok());
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.name(0), "who");
  EXPECT_EQ(s.hierarchy(1), &color);
  EXPECT_EQ(s.IndexOf("shade").value(), 1u);
  EXPECT_TRUE(s.IndexOf("nope").status().IsNotFound());
}

TEST(SchemaTest, RejectsDuplicateAndInvalid) {
  Hierarchy animal("animal");
  Schema s;
  ASSERT_TRUE(s.Append("who", &animal).ok());
  EXPECT_TRUE(s.Append("who", &animal).IsAlreadyExists());
  EXPECT_TRUE(s.Append("", &animal).IsInvalidArgument());
  EXPECT_TRUE(s.Append("x", nullptr).IsInvalidArgument());
}

TEST(SchemaTest, ToString) {
  Hierarchy animal("animal"), size("sq");
  Schema s;
  ASSERT_TRUE(s.Append("who", &animal).ok());
  ASSERT_TRUE(s.Append("area", &size).ok());
  EXPECT_EQ(s.ToString(), "(who: animal, area: sq)");
  EXPECT_EQ(Schema().ToString(), "()");
}

TEST(SchemaTest, CompatibilityIgnoresNames) {
  Hierarchy animal("animal"), color("color");
  Schema a, b, c;
  ASSERT_TRUE(a.Append("x", &animal).ok());
  ASSERT_TRUE(b.Append("y", &animal).ok());
  ASSERT_TRUE(c.Append("x", &color).ok());
  EXPECT_TRUE(a.CompatibleWith(b));
  EXPECT_FALSE(a.CompatibleWith(c));
  EXPECT_FALSE(a.CompatibleWith(Schema()));
}

TEST(SchemaTest, EqualityIncludesNames) {
  Hierarchy animal("animal");
  Schema a, b;
  ASSERT_TRUE(a.Append("x", &animal).ok());
  ASSERT_TRUE(b.Append("x", &animal).ok());
  EXPECT_EQ(a, b);
  Schema c;
  ASSERT_TRUE(c.Append("y", &animal).ok());
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace hirel

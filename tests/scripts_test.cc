// Guards the example HQL scripts in examples/scripts/ against rot: each
// one must execute cleanly against a fresh database. The source directory
// is injected by CMake as HIREL_SOURCE_DIR.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/inference.h"
#include "hql/executor.h"

#ifndef HIREL_SOURCE_DIR
#error "HIREL_SOURCE_DIR must be defined by the build"
#endif

namespace hirel {
namespace hql {
namespace {

std::string ReadScript(const std::string& name) {
  std::string path =
      std::string(HIREL_SOURCE_DIR) + "/examples/scripts/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing script " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ScriptsTest, Fig1FlyingScript) {
  Executor exec;
  Result<std::string> out = exec.Execute(ReadScript("fig1_flying.hql"));
  ASSERT_TRUE(out.ok()) << out.status();
  // The script's EXPLAIN for paul must show the penguin exception binding.
  EXPECT_NE(out->find("binds> - (penguin)"), std::string::npos);
  // And the extension excludes paul.
  EXPECT_NE(out->find("extension of 'flies' (4 rows)"), std::string::npos);
}

TEST(ScriptsTest, Fig3RespectsScript) {
  Executor exec;
  Result<std::string> out = exec.Execute(ReadScript("fig3_respects.hql"));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("committed"), std::string::npos);
  EXPECT_NE(out->find("removed 2 redundant tuple(s)"), std::string::npos);
  // Final state: the single consolidated tuple.
  HierarchicalRelation* respects =
      exec.database().GetRelation("respects").value();
  EXPECT_EQ(respects->size(), 1u);
}

TEST(ScriptsTest, Fig4ElephantsScript) {
  Executor exec;
  Result<std::string> out = exec.Execute(ReadScript("fig4_elephants.hql"));
  ASSERT_TRUE(out.ok()) << out.status();
  // Appu's colour verdicts from the justification outputs.
  EXPECT_NE(out->find("(appu, grey): -"), std::string::npos);
  EXPECT_NE(out->find("(appu, white): +"), std::string::npos);
  // The projection back on (animal, color) exists with the right rows.
  HierarchicalRelation* back = exec.database().GetRelation("back").value();
  EXPECT_EQ(back->schema().size(), 2u);
}

}  // namespace
}  // namespace hql
}  // namespace hirel

// Guards the example HQL scripts in examples/scripts/ against rot: each
// one must execute cleanly against a fresh database. The source directory
// is injected by CMake as HIREL_SOURCE_DIR.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/inference.h"
#include "hql/executor.h"

#ifndef HIREL_SOURCE_DIR
#error "HIREL_SOURCE_DIR must be defined by the build"
#endif

namespace hirel {
namespace hql {
namespace {

std::string ReadScript(const std::string& name) {
  std::string path =
      std::string(HIREL_SOURCE_DIR) + "/examples/scripts/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing script " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ScriptsTest, Fig1FlyingScript) {
  Executor exec;
  Result<std::string> out = exec.Execute(ReadScript("fig1_flying.hql"));
  ASSERT_TRUE(out.ok()) << out.status();
  // The script's EXPLAIN for paul must show the penguin exception binding.
  EXPECT_NE(out->find("binds> - (penguin)"), std::string::npos);
  // And the extension excludes paul.
  EXPECT_NE(out->find("extension of 'flies' (4 rows)"), std::string::npos);
}

TEST(ScriptsTest, Fig3RespectsScript) {
  Executor exec;
  Result<std::string> out = exec.Execute(ReadScript("fig3_respects.hql"));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("committed"), std::string::npos);
  EXPECT_NE(out->find("removed 2 redundant tuple(s)"), std::string::npos);
  // Final state: the single consolidated tuple.
  HierarchicalRelation* respects =
      exec.database().GetRelation("respects").value();
  EXPECT_EQ(respects->size(), 1u);
}

TEST(ScriptsTest, Fig4ElephantsScript) {
  Executor exec;
  Result<std::string> out = exec.Execute(ReadScript("fig4_elephants.hql"));
  ASSERT_TRUE(out.ok()) << out.status();
  // Appu's colour verdicts from the justification outputs.
  EXPECT_NE(out->find("(appu, grey): -"), std::string::npos);
  EXPECT_NE(out->find("(appu, white): +"), std::string::npos);
  // The projection back on (animal, color) exists with the right rows.
  HierarchicalRelation* back = exec.database().GetRelation("back").value();
  EXPECT_EQ(back->schema().size(), 2u);
}

TEST(ScriptsTest, Fig7SelectScript) {
  Executor exec;
  Result<std::string> out = exec.Execute(ReadScript("fig7_select.hql"));
  ASSERT_TRUE(out.ok()) << out.status();
  // The plain selection compiles without rewrites...
  EXPECT_NE(out->find("Select who within obsequious_student"),
            std::string::npos);
  // ...and the union query gets its selection pushed into both branches.
  EXPECT_NE(out->find("selections pushed=2"), std::string::npos);
  size_t union_pos = out->find("Union");
  size_t select_pos = out->find("Select who within john");
  ASSERT_NE(union_pos, std::string::npos);
  ASSERT_NE(select_pos, std::string::npos);
  EXPECT_LT(union_pos, select_pos) << "selection should sit below the union";
}

TEST(ScriptsTest, Fig11JoinScript) {
  Executor exec;
  Result<std::string> out = exec.Execute(ReadScript("fig11_join.hql"));
  ASSERT_TRUE(out.ok()) << out.status();
  // The selection on the join attribute is pushed below the join, onto
  // both scans.
  EXPECT_NE(out->find("selections pushed=2"), std::string::npos);
  size_t join_pos = out->find("Join on (animal = animal)");
  size_t select_pos = out->find("Select animal within clyde");
  ASSERT_NE(join_pos, std::string::npos);
  ASSERT_NE(select_pos, std::string::npos);
  EXPECT_LT(join_pos, select_pos) << "selection should sit below the join";
  // The executed query agrees with Fig. 11b restricted to clyde.
  EXPECT_NE(out->find("| + | clyde  | dappled | 3000 |"), std::string::npos);
  // Fig. 11c: no loss of information in the projection back.
  EXPECT_NE(out->find("extension of 'back' (2 rows)"), std::string::npos);
}

}  // namespace
}  // namespace hql
}  // namespace hirel

#include "algebra/select.h"

#include <gtest/gtest.h>

#include "core/consolidate.h"
#include "core/explicate.h"
#include "flat/flat_ops.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::ElephantFixture;
using testing::FlyingFixture;
using testing::RespectsFixture;

/// ext(select_h(R)) must equal select_flat(ext(R)).
void ExpectSelectMatchesFlat(const HierarchicalRelation& relation,
                             size_t attr, NodeId node) {
  HierarchicalRelation selected =
      SelectEquals(relation, attr, node).value();
  std::vector<Item> hierarchical = Extension(selected).value();

  FlatRelation flat = FlatRelation::FromRows("f", relation.schema(),
                                             Extension(relation).value())
                          .value();
  FlatRelation expected = FlatSelectEquals(flat, attr, node).value();
  std::vector<Item> rows = expected.Rows();
  EXPECT_EQ(hierarchical, rows);
}

TEST(SelectTest, Fig7WhoDoObsequiousStudentsRespect) {
  RespectsFixture f;
  HierarchicalRelation result =
      SelectEquals(*f.respects, "who", "obsequious_student").value();
  ASSERT_TRUE(ConsolidateInPlace(result).ok());
  // Obsequious students respect all teachers: one positive tuple.
  ASSERT_EQ(result.size(), 1u);
  const HTuple& t = result.tuple(result.TupleIds()[0]);
  EXPECT_EQ(t.truth, Truth::kPositive);
  EXPECT_EQ(t.item, (Item{f.obsequious, f.teacher->root()}));
}

TEST(SelectTest, Fig8WhoDoesJohnRespect) {
  RespectsFixture f;
  HierarchicalRelation result =
      SelectEquals(*f.respects, "who", "john").value();
  ASSERT_TRUE(ConsolidateInPlace(result).ok());
  // John respects all teachers.
  ASSERT_EQ(result.size(), 1u);
  const HTuple& t = result.tuple(result.TupleIds()[0]);
  EXPECT_EQ(t.truth, Truth::kPositive);
  EXPECT_EQ(t.item, (Item{f.john, f.teacher->root()}));
}

TEST(SelectTest, SelectingPaulYieldsNothing) {
  FlyingFixture f;
  HierarchicalRelation result = SelectEquals(*f.flies, 0, f.paul).value();
  EXPECT_TRUE(Extension(result).value().empty());
  // After consolidation the bare negative disappears entirely.
  ASSERT_TRUE(ConsolidateInPlace(result).ok());
  EXPECT_TRUE(result.empty());
}

TEST(SelectTest, SelectingPenguinsKeepsExceptionStructure) {
  FlyingFixture f;
  HierarchicalRelation result =
      SelectEquals(*f.flies, 0, f.penguin).value();
  // Extension: the flying penguins only.
  std::vector<Item> extension = Extension(result).value();
  std::vector<Item> expected{{f.pamela}, {f.patricia}, {f.peter}};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(extension, expected);
}

TEST(SelectTest, MatchesFlatSemanticsOnFixtures) {
  FlyingFixture f;
  ExpectSelectMatchesFlat(*f.flies, 0, f.bird);
  ExpectSelectMatchesFlat(*f.flies, 0, f.penguin);
  ExpectSelectMatchesFlat(*f.flies, 0, f.afp);
  ExpectSelectMatchesFlat(*f.flies, 0, f.paul);
  ExpectSelectMatchesFlat(*f.flies, 0, f.tweety);

  ElephantFixture e;
  ExpectSelectMatchesFlat(*e.colors, 0, e.royal);
  ExpectSelectMatchesFlat(*e.colors, 0, e.appu);
  ExpectSelectMatchesFlat(*e.colors, 1, e.grey);
  ExpectSelectMatchesFlat(*e.enclosure, 0, e.indian);
}

TEST(SelectTest, SelectionOnOverlappingClass) {
  FlyingFixture f;
  // A class overlapping (but incomparable with) asserted classes: water
  // birds containing paul and patricia.
  NodeId water = f.animal->AddClass("water_bird", f.bird).value();
  ASSERT_TRUE(f.animal->AddEdge(water, f.paul).ok());
  ASSERT_TRUE(f.animal->AddEdge(water, f.patricia).ok());
  ExpectSelectMatchesFlat(*f.flies, 0, water);
}

TEST(SelectTest, NameBasedLookupErrors) {
  RespectsFixture f;
  EXPECT_TRUE(SelectEquals(*f.respects, "nope", "john").status()
                  .IsNotFound());
  EXPECT_TRUE(SelectEquals(*f.respects, "who", "nobody").status()
                  .IsNotFound());
  EXPECT_TRUE(SelectEquals(*f.respects, 9, f.john).status()
                  .IsInvalidArgument());
}

TEST(SelectTest, SelectWherePredicateOnScalars) {
  ElephantFixture f;
  // Enclosures of at least 2500 sqft.
  HierarchicalRelation result =
      SelectWhere(*f.enclosure, 1,
                  [](const Value& v) { return v.AsInt() >= 2500; })
          .value();
  std::vector<Item> extension = Extension(result).value();
  // elephants (generic), royals, africans at 3000; indians are at 2000.
  for (const Item& item : extension) {
    EXPECT_EQ(item[1], f.sz3000);
  }
  FlatRelation flat = FlatRelation::FromRows("f", f.enclosure->schema(),
                                             Extension(*f.enclosure).value())
                          .value();
  FlatRelation expected =
      FlatSelectWhere(flat, 1,
                      [](const Value& v) { return v.AsInt() >= 2500; })
          .value();
  EXPECT_EQ(extension, expected.Rows());
}

TEST(SelectTest, SelectWhereOnStringValues) {
  FlyingFixture f;
  HierarchicalRelation result =
      SelectWhere(*f.flies, 0,
                  [](const Value& v) { return v.AsString()[0] == 'p'; })
          .value();
  std::vector<Item> extension = Extension(result).value();
  std::vector<Item> expected{{f.pamela}, {f.patricia}, {f.peter}};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(extension, expected);
}

}  // namespace
}  // namespace hirel

#include "algebra/setops.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/conflict.h"
#include "core/consolidate.h"
#include "core/explicate.h"
#include "flat/flat_ops.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::LovesFixture;

enum class Op { kUnion, kIntersect, kDifference };

Result<HierarchicalRelation> Apply(Op op, const HierarchicalRelation& l,
                                   const HierarchicalRelation& r) {
  switch (op) {
    case Op::kUnion:
      return Union(l, r);
    case Op::kIntersect:
      return Intersect(l, r);
    case Op::kDifference:
      return Difference(l, r);
  }
  return Status::Internal("unreachable");
}

Result<FlatRelation> ApplyFlat(Op op, const FlatRelation& l,
                               const FlatRelation& r) {
  switch (op) {
    case Op::kUnion:
      return FlatUnion(l, r);
    case Op::kIntersect:
      return FlatIntersect(l, r);
    case Op::kDifference:
      return FlatDifference(l, r);
  }
  return Status::Internal("unreachable");
}

void ExpectMatchesFlat(Op op, const HierarchicalRelation& l,
                       const HierarchicalRelation& r) {
  HierarchicalRelation result = Apply(op, l, r).value();
  FlatRelation lf =
      FlatRelation::FromRows("l", l.schema(), Extension(l).value()).value();
  FlatRelation rf =
      FlatRelation::FromRows("r", r.schema(), Extension(r).value()).value();
  FlatRelation expected = ApplyFlat(op, lf, rf).value();
  EXPECT_EQ(Extension(result).value(), expected.Rows());
}

TEST(SetOpsTest, Fig10cUnionJackAndJillBetweenThemLove) {
  LovesFixture f;
  HierarchicalRelation result = Union(*f.jill, *f.jack).value();
  ASSERT_TRUE(ConsolidateInPlace(result).ok());
  // Between them: all birds — one tuple after consolidation.
  ASSERT_EQ(result.size(), 1u);
  const HTuple& t = result.tuple(result.TupleIds()[0]);
  EXPECT_EQ(t.truth, Truth::kPositive);
  EXPECT_EQ(t.item, (Item{f.base.bird}));
  ExpectMatchesFlat(Op::kUnion, *f.jill, *f.jack);
}

TEST(SetOpsTest, Fig10dIntersectionJackAndJillBothLove) {
  LovesFixture f;
  HierarchicalRelation result = Intersect(*f.jill, *f.jack).value();
  // Both love exactly peter.
  EXPECT_EQ(Extension(result).value(),
            (std::vector<Item>{{f.base.peter}}));
  ExpectMatchesFlat(Op::kIntersect, *f.jill, *f.jack);
}

TEST(SetOpsTest, Fig10eJillLovesButJackDoesNot) {
  LovesFixture f;
  HierarchicalRelation result = Difference(*f.jill, *f.jack).value();
  // Jill minus Jack: non-penguin birds.
  std::vector<Item> expected{{f.base.tweety}};
  EXPECT_EQ(Extension(result).value(), expected);
  ExpectMatchesFlat(Op::kDifference, *f.jill, *f.jack);
}

TEST(SetOpsTest, Fig10fJackLovesButJillDoesNot) {
  LovesFixture f;
  HierarchicalRelation result = Difference(*f.jack, *f.jill).value();
  // Jack minus Jill: penguins except peter.
  std::vector<Item> expected{{f.base.paul}, {f.base.pamela},
                             {f.base.patricia}};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(Extension(result).value(), expected);
  ExpectMatchesFlat(Op::kDifference, *f.jack, *f.jill);
}

TEST(SetOpsTest, IncompatibleSchemasRejected) {
  LovesFixture f;
  Database db2;
  Hierarchy* other = db2.CreateHierarchy("other").value();
  (void)other;
  HierarchicalRelation* r =
      db2.CreateRelation("r", {{"who", "other"}}).value();
  EXPECT_TRUE(Union(*f.jill, *r).status().IsInvalidArgument());
}

TEST(SetOpsTest, UnionWithSelfIsIdentityOnExtension) {
  LovesFixture f;
  HierarchicalRelation result = Union(*f.jill, *f.jill).value();
  EXPECT_EQ(Extension(result).value(), Extension(*f.jill).value());
}

TEST(SetOpsTest, DifferenceWithSelfIsEmpty) {
  LovesFixture f;
  HierarchicalRelation result = Difference(*f.jill, *f.jill).value();
  EXPECT_TRUE(Extension(result).value().empty());
}

TEST(SetOpsTest, IntersectionOfOverlappingIncomparableClasses) {
  // R: A+, S: B+ with overlap class M: intersection is exactly M's
  // extension — the case that requires cross MCD candidates.
  Database db;
  Hierarchy* h = db.CreateHierarchy("d").value();
  NodeId a = h->AddClass("a").value();
  NodeId b = h->AddClass("b").value();
  NodeId m = h->AddClass("m", a).value();
  ASSERT_TRUE(h->AddEdge(b, m).ok());
  NodeId x = h->AddInstance(Value::String("x"), m).value();
  NodeId ya = h->AddInstance(Value::String("ya"), a).value();
  NodeId yb = h->AddInstance(Value::String("yb"), b).value();
  (void)ya;
  (void)yb;
  HierarchicalRelation* r = db.CreateRelation("r", {{"v", "d"}}).value();
  HierarchicalRelation* s = db.CreateRelation("s", {{"v", "d"}}).value();
  ASSERT_TRUE(r->Insert({a}, Truth::kPositive).ok());
  ASSERT_TRUE(s->Insert({b}, Truth::kPositive).ok());
  HierarchicalRelation result = Intersect(*r, *s).value();
  EXPECT_EQ(Extension(result).value(), (std::vector<Item>{{x}}));
  ExpectMatchesFlat(Op::kIntersect, *r, *s);
}

TEST(SetOpsTest, AttributeNamesMayDifferWhenDomainsMatch) {
  LovesFixture f;
  HierarchicalRelation* renamed =
      f.base.db.CreateRelation("renamed", {{"beast", "animal"}}).value();
  ASSERT_TRUE(renamed->Insert({f.base.canary}, Truth::kPositive).ok());
  EXPECT_TRUE(Union(*f.jill, *renamed).ok());
}

TEST(SetOpsTest, MatchesFlatOnRandomDatabasePairs) {
  for (uint64_t seed = 700; seed < 720; ++seed) {
    testing::RandomFixtureOptions options;
    options.num_classes = 8;
    options.num_instances = 10;
    options.num_tuples = 6;
    testing::RandomDatabase rdb(seed, options);
    // Build a second relation over the same hierarchy.
    Database& db = rdb.db();
    HierarchicalRelation* s =
        db.CreateRelation("s", {{"a0", "domain0"}}).value();
    Random rng(seed * 31 + 7);
    std::vector<NodeId> nodes = rdb.hierarchy(0)->Nodes();
    for (int i = 0; i < 5; ++i) {
      Item item{nodes[rng.Index(nodes.size())]};
      Truth truth =
          rng.Bernoulli(0.4) ? Truth::kNegative : Truth::kPositive;
      (void)s->Insert(item, truth);
    }
    // Keep s consistent: drop tuples until CheckAmbiguity passes.
    while (!CheckAmbiguity(*s).ok()) {
      std::vector<TupleId> ids = s->TupleIds();
      ASSERT_FALSE(ids.empty());
      ASSERT_TRUE(s->Erase(ids.back()).ok());
    }
    ExpectMatchesFlat(Op::kUnion, *rdb.relation(), *s);
    ExpectMatchesFlat(Op::kIntersect, *rdb.relation(), *s);
    ExpectMatchesFlat(Op::kDifference, *rdb.relation(), *s);
    ExpectMatchesFlat(Op::kDifference, *s, *rdb.relation());
    ASSERT_TRUE(db.DropRelation("s").ok());
  }
}

}  // namespace
}  // namespace hirel

#include "io/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/explicate.h"
#include "core/inference.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::ElephantFixture;
using testing::FlyingFixture;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SnapshotTest, SerializeDeserializeRoundTrip) {
  FlyingFixture f;
  std::string data = SerializeDatabase(f.db).value();
  std::unique_ptr<Database> loaded = DeserializeDatabase(data).value();

  Hierarchy* animal = loaded->GetHierarchy("animal").value();
  EXPECT_EQ(animal->num_classes(), f.animal->num_classes());
  EXPECT_EQ(animal->num_instances(), f.animal->num_instances());

  HierarchicalRelation* flies = loaded->GetRelation("flies").value();
  EXPECT_EQ(flies->size(), f.flies->size());

  // Semantics preserved: same verdicts for every instance by name.
  for (const char* name :
       {"tweety", "paul", "pamela", "patricia", "peter"}) {
    NodeId original = f.animal->FindInstance(Value::String(name)).value();
    NodeId reloaded = animal->FindInstance(Value::String(name)).value();
    EXPECT_EQ(InferTruth(*f.flies, {original}).value(),
              InferTruth(*flies, {reloaded}).value())
        << name;
  }
}

TEST(SnapshotTest, MultiHierarchyMultiRelationRoundTrip) {
  ElephantFixture f;
  std::string data = SerializeDatabase(f.db).value();
  std::unique_ptr<Database> loaded = DeserializeDatabase(data).value();
  EXPECT_EQ(loaded->HierarchyNames(), f.db.HierarchyNames());
  EXPECT_EQ(loaded->RelationNames(), f.db.RelationNames());

  // Extensions (by rendered names) must survive.
  HierarchicalRelation* colors = loaded->GetRelation("color_of").value();
  std::vector<std::string> names_before, names_after;
  std::vector<Item> ext_before = Extension(*f.colors).value();
  for (const Item& item : ext_before) {
    names_before.push_back(ItemToString(f.colors->schema(), item));
  }
  std::vector<Item> ext_after = Extension(*colors).value();
  for (const Item& item : ext_after) {
    names_after.push_back(ItemToString(colors->schema(), item));
  }
  std::sort(names_before.begin(), names_before.end());
  std::sort(names_after.begin(), names_after.end());
  EXPECT_EQ(names_before, names_after);

  // Int-valued instances survive with their type.
  Hierarchy* size = loaded->GetHierarchy("enclosure_size").value();
  EXPECT_TRUE(size->FindInstance(Value::Int(3000)).ok());
  EXPECT_FALSE(size->FindInstance(Value::String("3000")).ok());
}

TEST(SnapshotTest, PreferenceEdgesAndOptionsSurvive) {
  Database db;
  Hierarchy* h =
      db.CreateHierarchy("d", HierarchyOptions{.keep_redundant_edges = true})
          .value();
  NodeId a = h->AddClass("a").value();
  NodeId b = h->AddClass("b").value();
  ASSERT_TRUE(h->AddPreferenceEdge(a, b).ok());

  std::string data = SerializeDatabase(db).value();
  std::unique_ptr<Database> loaded = DeserializeDatabase(data).value();
  Hierarchy* lh = loaded->GetHierarchy("d").value();
  EXPECT_TRUE(lh->options().keep_redundant_edges);
  EXPECT_EQ(lh->num_preference_edges(), 1u);
  NodeId la = lh->FindClass("a").value();
  NodeId lb = lh->FindClass("b").value();
  EXPECT_TRUE(lh->BindsBelow(la, lb));
  EXPECT_FALSE(lh->Subsumes(la, lb));
}

TEST(SnapshotTest, SaveAndLoadFile) {
  FlyingFixture f;
  std::string path = TempPath("flying.hirel");
  ASSERT_TRUE(SaveDatabase(f.db, path).ok());
  std::unique_ptr<Database> loaded = LoadDatabase(path).value();
  EXPECT_TRUE(loaded->GetRelation("flies").ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadMissingFileIsIoError) {
  EXPECT_TRUE(LoadDatabase("/nonexistent/nowhere.hirel").status()
                  .IsIoError());
}

TEST(SnapshotTest, BadMagicIsCorruption) {
  EXPECT_TRUE(DeserializeDatabase("NOTHIREL????????").status()
                  .IsCorruption());
  EXPECT_TRUE(DeserializeDatabase("").status().IsCorruption());
}

TEST(SnapshotTest, BitFlipIsDetectedByChecksum) {
  FlyingFixture f;
  std::string data = SerializeDatabase(f.db).value();
  for (size_t pos : {size_t{9}, data.size() / 2, data.size() - 9}) {
    std::string corrupted = data;
    corrupted[pos] ^= 0x40;
    EXPECT_TRUE(DeserializeDatabase(corrupted).status().IsCorruption())
        << "flip at " << pos;
  }
}

TEST(SnapshotTest, TruncationIsDetected) {
  FlyingFixture f;
  std::string data = SerializeDatabase(f.db).value();
  std::string truncated = data.substr(0, data.size() / 2);
  EXPECT_TRUE(DeserializeDatabase(truncated).status().IsCorruption());
}

TEST(SnapshotTest, DoubleRoundTripIsStable) {
  ElephantFixture f;
  std::string once = SerializeDatabase(f.db).value();
  std::unique_ptr<Database> loaded = DeserializeDatabase(once).value();
  std::string twice = SerializeDatabase(*loaded).value();
  EXPECT_EQ(once, twice);
}

TEST(SnapshotTest, ColumnarRelationRoundTripPreservesKindAndContents) {
  Database db;
  Hierarchy* h = db.CreateHierarchy("animal").value();
  NodeId bird = h->AddClass("bird").value();
  NodeId penguin = h->AddClass("penguin", {bird}).value();
  NodeId tweety =
      h->AddInstance(Value::String("tweety"), {bird}).value();
  HierarchicalRelation* flies =
      db.CreateRelation("flies", {{"who", "animal"}},
                        StorageKind::kColumnar)
          .value();
  ASSERT_TRUE(flies->Insert({bird}, Truth::kPositive).ok());
  ASSERT_TRUE(flies->Insert({penguin}, Truth::kNegative).ok());
  HierarchicalRelation* rows =
      db.CreateRelation("rows", {{"who", "animal"}}, StorageKind::kRow)
          .value();
  ASSERT_TRUE(rows->Insert({tweety}, Truth::kPositive).ok());

  std::string data = SerializeDatabase(db).value();
  std::unique_ptr<Database> loaded = DeserializeDatabase(data).value();

  // Each relation keeps the layout it was created with, whatever the
  // session default is at load time.
  HierarchicalRelation* lf = loaded->GetRelation("flies").value();
  EXPECT_EQ(lf->storage_kind(), StorageKind::kColumnar);
  EXPECT_EQ(loaded->GetRelation("rows").value()->storage_kind(),
            StorageKind::kRow);
  EXPECT_EQ(lf->ToString(), flies->ToString());

  // Stability: a reload of a reserialization is byte-identical.
  EXPECT_EQ(SerializeDatabase(*loaded).value(), data);
}

TEST(SnapshotTest, UnknownStorageTagIsCorruption) {
  Database db;
  ASSERT_TRUE(db.CreateHierarchy("h").ok());
  ASSERT_TRUE(db.CreateRelation("r", {}).ok());
  std::string data = SerializeDatabase(db).value();
  // The relation's storage tag sits right before the tuple count (here 0),
  // which is the last body byte ahead of the 8-byte checksum trailer.
  // Patch the tag and re-stamp the checksum so only the tag check fires.
  std::string body = data.substr(0, data.size() - 8);
  body[body.size() - 2] = '\x07';
  uint64_t checksum = 0xcbf29ce484222325ULL;
  for (char c : body) {
    checksum ^= static_cast<uint8_t>(c);
    checksum *= 0x100000001b3ULL;
  }
  for (int i = 0; i < 8; ++i) {
    body.push_back(static_cast<char>((checksum >> (8 * i)) & 0xff));
  }
  EXPECT_TRUE(DeserializeDatabase(body).status().IsCorruption());
}

/// A snapshot written by the pre-TupleStore format (magic HIRELDB1,
/// committed as a binary fixture) must keep loading: relations come back
/// under the session-default layout with their contents intact.
TEST(SnapshotTest, LegacyV1SnapshotStillLoads) {
  std::unique_ptr<Database> loaded =
      LoadDatabase(std::string(HIREL_SOURCE_DIR) +
                   "/tests/data/legacy_v1.snapshot")
          .value();
  EXPECT_EQ(loaded->HierarchyNames(),
            (std::vector<std::string>{"animal", "place"}));
  EXPECT_EQ(loaded->RelationNames(),
            (std::vector<std::string>{"flies", "lives"}));

  Hierarchy* animal = loaded->GetHierarchy("animal").value();
  HierarchicalRelation* flies = loaded->GetRelation("flies").value();
  EXPECT_EQ(flies->storage_kind(), DefaultStorageKind());
  NodeId tweety = animal->FindInstance(Value::String("tweety")).value();
  NodeId opus = animal->FindInstance(Value::String("opus")).value();
  EXPECT_EQ(InferTruth(*flies, {tweety}).value(), Truth::kPositive);
  EXPECT_EQ(InferTruth(*flies, {opus}).value(), Truth::kNegative);

  HierarchicalRelation* lives = loaded->GetRelation("lives").value();
  EXPECT_EQ(lives->size(), 2u);

  // And the old database reserializes cleanly in the current format.
  std::string rewritten = SerializeDatabase(*loaded).value();
  std::unique_ptr<Database> again = DeserializeDatabase(rewritten).value();
  EXPECT_EQ(again->GetRelation("flies").value()->ToString(),
            flies->ToString());
}

TEST(SnapshotTest, EmptyDatabaseRoundTrip) {
  Database db;
  std::string data = SerializeDatabase(db).value();
  std::unique_ptr<Database> loaded = DeserializeDatabase(data).value();
  EXPECT_TRUE(loaded->HierarchyNames().empty());
  EXPECT_TRUE(loaded->RelationNames().empty());
}

}  // namespace
}  // namespace hirel

#include "io/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/explicate.h"
#include "core/inference.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::ElephantFixture;
using testing::FlyingFixture;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SnapshotTest, SerializeDeserializeRoundTrip) {
  FlyingFixture f;
  std::string data = SerializeDatabase(f.db).value();
  std::unique_ptr<Database> loaded = DeserializeDatabase(data).value();

  Hierarchy* animal = loaded->GetHierarchy("animal").value();
  EXPECT_EQ(animal->num_classes(), f.animal->num_classes());
  EXPECT_EQ(animal->num_instances(), f.animal->num_instances());

  HierarchicalRelation* flies = loaded->GetRelation("flies").value();
  EXPECT_EQ(flies->size(), f.flies->size());

  // Semantics preserved: same verdicts for every instance by name.
  for (const char* name :
       {"tweety", "paul", "pamela", "patricia", "peter"}) {
    NodeId original = f.animal->FindInstance(Value::String(name)).value();
    NodeId reloaded = animal->FindInstance(Value::String(name)).value();
    EXPECT_EQ(InferTruth(*f.flies, {original}).value(),
              InferTruth(*flies, {reloaded}).value())
        << name;
  }
}

TEST(SnapshotTest, MultiHierarchyMultiRelationRoundTrip) {
  ElephantFixture f;
  std::string data = SerializeDatabase(f.db).value();
  std::unique_ptr<Database> loaded = DeserializeDatabase(data).value();
  EXPECT_EQ(loaded->HierarchyNames(), f.db.HierarchyNames());
  EXPECT_EQ(loaded->RelationNames(), f.db.RelationNames());

  // Extensions (by rendered names) must survive.
  HierarchicalRelation* colors = loaded->GetRelation("color_of").value();
  std::vector<std::string> names_before, names_after;
  std::vector<Item> ext_before = Extension(*f.colors).value();
  for (const Item& item : ext_before) {
    names_before.push_back(ItemToString(f.colors->schema(), item));
  }
  std::vector<Item> ext_after = Extension(*colors).value();
  for (const Item& item : ext_after) {
    names_after.push_back(ItemToString(colors->schema(), item));
  }
  std::sort(names_before.begin(), names_before.end());
  std::sort(names_after.begin(), names_after.end());
  EXPECT_EQ(names_before, names_after);

  // Int-valued instances survive with their type.
  Hierarchy* size = loaded->GetHierarchy("enclosure_size").value();
  EXPECT_TRUE(size->FindInstance(Value::Int(3000)).ok());
  EXPECT_FALSE(size->FindInstance(Value::String("3000")).ok());
}

TEST(SnapshotTest, PreferenceEdgesAndOptionsSurvive) {
  Database db;
  Hierarchy* h =
      db.CreateHierarchy("d", HierarchyOptions{.keep_redundant_edges = true})
          .value();
  NodeId a = h->AddClass("a").value();
  NodeId b = h->AddClass("b").value();
  ASSERT_TRUE(h->AddPreferenceEdge(a, b).ok());

  std::string data = SerializeDatabase(db).value();
  std::unique_ptr<Database> loaded = DeserializeDatabase(data).value();
  Hierarchy* lh = loaded->GetHierarchy("d").value();
  EXPECT_TRUE(lh->options().keep_redundant_edges);
  EXPECT_EQ(lh->num_preference_edges(), 1u);
  NodeId la = lh->FindClass("a").value();
  NodeId lb = lh->FindClass("b").value();
  EXPECT_TRUE(lh->BindsBelow(la, lb));
  EXPECT_FALSE(lh->Subsumes(la, lb));
}

TEST(SnapshotTest, SaveAndLoadFile) {
  FlyingFixture f;
  std::string path = TempPath("flying.hirel");
  ASSERT_TRUE(SaveDatabase(f.db, path).ok());
  std::unique_ptr<Database> loaded = LoadDatabase(path).value();
  EXPECT_TRUE(loaded->GetRelation("flies").ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadMissingFileIsIoError) {
  EXPECT_TRUE(LoadDatabase("/nonexistent/nowhere.hirel").status()
                  .IsIoError());
}

TEST(SnapshotTest, BadMagicIsCorruption) {
  EXPECT_TRUE(DeserializeDatabase("NOTHIREL????????").status()
                  .IsCorruption());
  EXPECT_TRUE(DeserializeDatabase("").status().IsCorruption());
}

TEST(SnapshotTest, BitFlipIsDetectedByChecksum) {
  FlyingFixture f;
  std::string data = SerializeDatabase(f.db).value();
  for (size_t pos : {size_t{9}, data.size() / 2, data.size() - 9}) {
    std::string corrupted = data;
    corrupted[pos] ^= 0x40;
    EXPECT_TRUE(DeserializeDatabase(corrupted).status().IsCorruption())
        << "flip at " << pos;
  }
}

TEST(SnapshotTest, TruncationIsDetected) {
  FlyingFixture f;
  std::string data = SerializeDatabase(f.db).value();
  std::string truncated = data.substr(0, data.size() / 2);
  EXPECT_TRUE(DeserializeDatabase(truncated).status().IsCorruption());
}

TEST(SnapshotTest, DoubleRoundTripIsStable) {
  ElephantFixture f;
  std::string once = SerializeDatabase(f.db).value();
  std::unique_ptr<Database> loaded = DeserializeDatabase(once).value();
  std::string twice = SerializeDatabase(*loaded).value();
  EXPECT_EQ(once, twice);
}

TEST(SnapshotTest, EmptyDatabaseRoundTrip) {
  Database db;
  std::string data = SerializeDatabase(db).value();
  std::unique_ptr<Database> loaded = DeserializeDatabase(data).value();
  EXPECT_TRUE(loaded->HierarchyNames().empty());
  EXPECT_TRUE(loaded->RelationNames().empty());
}

}  // namespace
}  // namespace hirel

#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace hirel {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IntegrityViolation("x").IsIntegrityViolation());
  EXPECT_TRUE(Status::Conflict("x").IsConflict());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::Conflict("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::Conflict("penguins disagree");
  EXPECT_EQ(s.ToString(), "conflict: penguins disagree");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Conflict("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream oss;
  oss << Status::IoError("disk");
  EXPECT_EQ(oss.str(), "io error: disk");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= 11; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "unknown");
  }
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  HIREL_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(Chain(3).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  HIREL_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = 7;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(*ok, 7);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err = Status::NotFound("gone");
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsNotFound());
  EXPECT_EQ(err.value_or(42), 42);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_TRUE(Doubled(-1).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyFriendly) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

}  // namespace
}  // namespace hirel

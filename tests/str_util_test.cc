#include "common/str_util.h"

#include <gtest/gtest.h>

namespace hirel {
namespace {

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x  "), "x");
  EXPECT_EQ(StripWhitespace("x"), "x");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("\t a b \n"), "a b");
}

TEST(StrUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_FALSE(StartsWith("hello", "el"));
}

TEST(StrUtilTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("SELECT"), "select");
  EXPECT_EQ(AsciiToLower("MiXeD_123"), "mixed_123");
}

TEST(StrUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Select", "sELECT"));
  EXPECT_FALSE(EqualsIgnoreCase("select", "selec"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(StrUtilTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StrUtilTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace hirel

#include "core/subsumption.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::FlyingFixture;
using testing::RespectsFixture;

TEST(SubsumptionTest, NodesInTopologicalOrder) {
  FlyingFixture f;
  SubsumptionGraph g = BuildSubsumptionGraph(*f.flies);
  ASSERT_EQ(g.nodes.size(), 4u);
  // bird+ must precede penguin-, which precedes afp+, which precedes
  // peter+.
  std::vector<Item> order;
  for (TupleId id : g.nodes) order.push_back(f.flies->tuple(id).item);
  EXPECT_EQ(order[0], (Item{f.bird}));
  EXPECT_EQ(order[1], (Item{f.penguin}));
  EXPECT_EQ(order[2], (Item{f.afp}));
  EXPECT_EQ(order[3], (Item{f.peter}));
}

TEST(SubsumptionTest, HasseEdgesOnly) {
  FlyingFixture f;
  SubsumptionGraph g = BuildSubsumptionGraph(*f.flies);
  // Chain: 0 -> 1 -> 2 -> 3, no transitive shortcuts.
  EXPECT_EQ(g.successors[0], (std::vector<size_t>{1}));
  EXPECT_EQ(g.successors[1], (std::vector<size_t>{2}));
  EXPECT_EQ(g.successors[2], (std::vector<size_t>{3}));
  EXPECT_TRUE(g.successors[3].empty());
}

TEST(SubsumptionTest, UniversalNodeCapsSources) {
  FlyingFixture f;
  SubsumptionGraph g = BuildSubsumptionGraph(*f.flies);
  ASSERT_EQ(g.sources.size(), 1u);
  EXPECT_EQ(g.sources[0], 0u);
  EXPECT_EQ(g.predecessors[0],
            (std::vector<size_t>{SubsumptionGraph::kUniversalNode}));
  EXPECT_EQ(g.predecessors[1], (std::vector<size_t>{0}));
}

TEST(SubsumptionTest, Fig6aRespectsGraph) {
  RespectsFixture f;
  SubsumptionGraph g = BuildSubsumptionGraph(*f.respects);
  ASSERT_EQ(g.nodes.size(), 3u);
  // Two incomparable sources: (obsequious, teacher)+ and (student,
  // incoherent)-; both cover (obsequious, incoherent)+.
  EXPECT_EQ(g.sources.size(), 2u);
  // The resolver tuple is last in topological order, with both sources as
  // immediate predecessors.
  Item resolver{f.obsequious, f.incoherent};
  EXPECT_EQ(f.respects->tuple(g.nodes[2]).item, resolver);
  EXPECT_EQ(g.predecessors[2].size(), 2u);
}

TEST(SubsumptionTest, EmptyRelation) {
  FlyingFixture f;
  f.flies->Clear();
  SubsumptionGraph g = BuildSubsumptionGraph(*f.flies);
  EXPECT_TRUE(g.nodes.empty());
  EXPECT_TRUE(g.sources.empty());
}

TEST(SubsumptionTest, ToStringMentionsUniversalTuple) {
  FlyingFixture f;
  SubsumptionGraph g = BuildSubsumptionGraph(*f.flies);
  std::string s = SubsumptionGraphToString(*f.flies, g);
  EXPECT_NE(s.find("universal"), std::string::npos);
  EXPECT_NE(s.find("(bird)"), std::string::npos);
}

}  // namespace
}  // namespace hirel

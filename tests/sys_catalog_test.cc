// System catalog: the sys.* virtual relations (metrics, log, relations,
// columns, cache, pool, queries), subsumption-aware selection over the
// telemetry hierarchies, per-query resource accounting in the history
// ring, and the read-only guards on the sys. namespace.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "hql/executor.h"
#include "obs/query_stats.h"
#include "obs/sys_catalog.h"
#include "plan/execute.h"
#include "plan/planner.h"
#include "plan/rewrite.h"

namespace hirel {
namespace {

constexpr const char* kFlyingScript = R"(
CREATE HIERARCHY animal;
CREATE CLASS bird IN animal;
CREATE CLASS penguin IN animal UNDER bird;
CREATE INSTANCE tweety IN animal UNDER bird;
CREATE INSTANCE paul IN animal UNDER penguin;
CREATE RELATION flies (who: animal);
ASSERT flies(ALL bird);
DENY flies(ALL penguin);
)";

TEST(SysCatalogTest, ShowRelationsListsVirtualRelations) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  std::string out = exec.Execute("SHOW RELATIONS;").value();
  EXPECT_NE(out.find("flies"), std::string::npos);
  EXPECT_NE(out.find("sys.metrics (virtual)"), std::string::npos);
  EXPECT_NE(out.find("sys.queries (virtual)"), std::string::npos);
}

TEST(SysCatalogTest, SelectOverSysRelationsSeesStoredAndVirtual) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  std::string out = exec.Execute("SELECT * FROM sys.relations;").value();
  EXPECT_NE(out.find("flies"), std::string::npos);
  EXPECT_NE(out.find("sys.metrics"), std::string::npos);
  EXPECT_NE(out.find("virtual"), std::string::npos);
}

TEST(SysCatalogTest, MetricNameSubtreeSelection) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  // `ALL pool` names the class covering every pool.* metric: subsumption
  // clamps each row into the subtree, so only pool metrics survive.
  std::string out =
      exec.Execute("SELECT * FROM sys.metrics WHERE name = ALL pool;")
          .value();
  EXPECT_NE(out.find("pool.workers"), std::string::npos);
  EXPECT_EQ(out.find("query.statements"), std::string::npos);
  EXPECT_EQ(out.find("storage.row_bytes"), std::string::npos);
}

TEST(SysCatalogTest, ProcessGaugesPresent) {
  hql::Executor exec;
  std::string out =
      exec.Execute("SELECT * FROM sys.metrics WHERE name = ALL process;")
          .value();
  EXPECT_NE(out.find("process.uptime_ms"), std::string::npos);
}

TEST(SysCatalogTest, LogSeveritySubsumption) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute("SET LOG info;").ok());
  // DDL logs at info; an over-threshold query logs slow_query at warn.
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_TRUE(exec.Execute("SET SLOW_QUERY_MS 0;").ok());
  ASSERT_TRUE(exec.Execute("SELECT * FROM flies WHERE who = paul;").ok());
  // ALL warn covers the {warn, error} subtree: slow_query is in, DDL out.
  std::string warn =
      exec.Execute("SELECT * FROM sys.log WHERE level = ALL warn;").value();
  EXPECT_NE(warn.find("slow_query"), std::string::npos);
  EXPECT_EQ(warn.find("create_relation"), std::string::npos);
  // ALL debug is the root: everything is covered.
  std::string all =
      exec.Execute("SELECT * FROM sys.log WHERE level = ALL debug;").value();
  EXPECT_NE(all.find("slow_query"), std::string::npos);
  ASSERT_TRUE(exec.Execute("SET SLOW_QUERY_MS OFF;").ok());
}

TEST(SysCatalogTest, ProjectionOverSysMetricsViaPlan) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  Database& db = exec.database();
  hql::CreateProjectStmt stmt;
  stmt.name = "tmp";
  stmt.source = "sys.metrics";
  stmt.attributes = {"name", "kind"};
  Result<plan::PlanPtr> compiled = plan::CompileCreateProject(db, stmt);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  Result<plan::PlanPtr> rewritten =
      plan::RewritePlan(std::move(*compiled), db);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  Result<plan::PlanOutput> out = plan::ExecutePlan(**rewritten, db);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_TRUE(out->relation.has_value());
  EXPECT_EQ(out->relation->schema().size(), 2u);
  EXPECT_GT(out->relation->size(), 0u);
}

TEST(SysCatalogTest, JoinRelationsWithColumns) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  // Natural join on the shared `relation` attribute (same sys.label
  // hierarchy in both schemas). Only stored relations have column rows.
  std::string out =
      exec.Execute("SELECT * FROM sys.columns JOIN sys.relations;").value();
  EXPECT_NE(out.find("flies"), std::string::npos);
  EXPECT_NE(out.find("col_bytes"), std::string::npos);
  EXPECT_NE(out.find("storage"), std::string::npos);
  EXPECT_EQ(out.find("sys.metrics"), std::string::npos);
}

TEST(SysCatalogTest, EveryStatementRecordedInQueryHistory) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_TRUE(exec.Execute("SELECT * FROM flies WHERE who = paul;").ok());
  std::vector<std::shared_ptr<const obs::QueryStats>> entries =
      exec.query_history().Snapshot();
  // 8 script statements + the select.
  ASSERT_EQ(entries.size(), 9u);
  uint64_t last_id = 0;
  for (const auto& entry : entries) {
    EXPECT_GT(entry->id, last_id);
    last_id = entry->id;
    EXPECT_GE(entry->wall_ns, 1u);  // non-zero wall time, always
    EXPECT_TRUE(entry->ok);
    EXPECT_FALSE(entry->kind.empty());
    EXPECT_FALSE(entry->statement.empty());
  }
  EXPECT_EQ(entries.front()->kind, "create hierarchy");
  EXPECT_EQ(entries.back()->kind, "select");
  EXPECT_GT(entries.back()->rows_in, 0u);
  EXPECT_FALSE(entries.back()->plan_digest.empty());
}

TEST(SysCatalogTest, FailedStatementsRecordedToo) {
  hql::Executor exec;
  EXPECT_FALSE(exec.Execute("SELECT * FROM nonexistent;").ok());
  std::vector<std::shared_ptr<const obs::QueryStats>> entries =
      exec.query_history().Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_FALSE(entries.front()->ok);
}

TEST(SysCatalogTest, SelectOverSysQueriesDoesNotSeeItself) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  std::string out = exec.Execute("SELECT * FROM sys.queries;").value();
  EXPECT_NE(out.find("create hierarchy"), std::string::npos);
  // The running SELECT is appended after it completes, not during: no
  // recorded statement text mentions sys.queries yet.
  EXPECT_EQ(out.find("FROM sys.queries"), std::string::npos);
  std::vector<std::shared_ptr<const obs::QueryStats>> entries =
      exec.query_history().Snapshot();
  EXPECT_EQ(entries.back()->kind, "select");
}

TEST(SysCatalogTest, ProbesMatchExplainAnalyzeTotals) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  std::string out =
      exec.Execute(
              "EXPLAIN ANALYZE SELECT * FROM flies WHERE who = ALL penguin;")
          .value();
  size_t pos = out.find("totals:");
  ASSERT_NE(pos, std::string::npos);
  pos = out.find("probes=", pos);
  ASSERT_NE(pos, std::string::npos);
  uint64_t reported = std::strtoull(out.c_str() + pos + 7, nullptr, 10);
  std::vector<std::shared_ptr<const obs::QueryStats>> entries =
      exec.query_history().Snapshot();
  ASSERT_FALSE(entries.empty());
  EXPECT_EQ(entries.back()->kind, "explain analyze");
  EXPECT_EQ(entries.back()->subsumption_probes, reported);
}

TEST(SysCatalogTest, ShowQueriesRendersTextAndJson) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  std::string text = exec.Execute("SHOW QUERIES;").value();
  EXPECT_NE(text.find("newest first"), std::string::npos);
  EXPECT_NE(text.find("[create hierarchy]"), std::string::npos);
  std::string json = exec.Execute("SHOW QUERIES JSON;").value();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"kind\":\"assert\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_us\":"), std::string::npos);
  EXPECT_NE(json.find("\"probes\":"), std::string::npos);
}

TEST(SysCatalogTest, ShowRelationMaterializesVirtual) {
  hql::Executor exec;
  std::string out = exec.Execute("SHOW RELATION sys.pool;").value();
  EXPECT_NE(out.find("caller"), std::string::npos);
  EXPECT_NE(out.find("busy_ms"), std::string::npos);
}

TEST(SysCatalogTest, SysCacheListsEntriesAfterConsolidate) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_TRUE(exec.Execute("SHOW SUBSUMPTION flies;").ok());
  std::string out = exec.Execute("SELECT * FROM sys.cache;").value();
  EXPECT_NE(out.find("flies"), std::string::npos);
}

TEST(SysCatalogTest, ReadOnlyGuards) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());

  Result<std::string> r = exec.Execute("ASSERT sys.metrics(x, y, z, w);");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("read-only"), std::string::npos);

  r = exec.Execute("DROP RELATION sys.metrics;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("cannot be dropped"),
            std::string::npos);

  r = exec.Execute("CREATE RELATION sys.mine (who: animal);");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("reserved"), std::string::npos);

  r = exec.Execute("CREATE HIERARCHY sys.h;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("reserved"), std::string::npos);

  r = exec.Execute("BEGIN sys.queries;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("read-only"), std::string::npos);

  r = exec.Execute("CONSOLIDATE sys.metrics;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("read-only"), std::string::npos);

  r = exec.Execute("COMPRESS sys.log;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("read-only"), std::string::npos);

  // Results over sys. relations range over hidden system hierarchies, so
  // they cannot be adopted into the catalog (or saved).
  r = exec.Execute("CREATE RELATION snap AS PROJECT sys.metrics ON (name);");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("cannot be stored"),
            std::string::npos);
}

TEST(SysCatalogTest, SystemCatalogSurvivesLoad) {
  std::string path = ::testing::TempDir() + "sys_catalog_load_test.hirel";
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_TRUE(exec.Execute("SAVE '" + path + "';").ok());
  size_t before = exec.query_history().Snapshot().size();
  ASSERT_TRUE(exec.Execute("LOAD '" + path + "';").ok());
  // Providers are re-registered on the loaded database and the history
  // ring survives the swap.
  std::string out = exec.Execute("SELECT * FROM sys.relations;").value();
  EXPECT_NE(out.find("flies"), std::string::npos);
  EXPECT_NE(out.find("sys.metrics"), std::string::npos);
  EXPECT_GT(exec.query_history().Snapshot().size(), before);
  std::remove(path.c_str());
}

TEST(SysCatalogTest, SysWaitsAggregatesAndClassSubsumption) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  // SAVE blocks on snapshot.save, so the io class is guaranteed a row
  // even in an otherwise uncontended single-threaded run.
  std::string path = ::testing::TempDir() + "sys_waits_test.hirel";
  ASSERT_TRUE(exec.Execute("SAVE '" + path + "';").ok());
  std::remove(path.c_str());

  std::string out = exec.Execute("SELECT * FROM sys.waits;").value();
  EXPECT_NE(out.find("snapshot.save"), std::string::npos);
  EXPECT_NE(out.find("io"), std::string::npos);

  // Sites live under their wait-class node, so `ALL io` selects exactly
  // the io sites by subsumption.
  std::string io =
      exec.Execute("SELECT * FROM sys.waits WHERE site = ALL io;").value();
  EXPECT_NE(io.find("snapshot.save"), std::string::npos);
  EXPECT_EQ(io.find("query_ring"), std::string::npos);
}

TEST(SysCatalogTest, SysMetricsHistorySubtreeSelection) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  // Populate pool.* (and everything else) via the gauge sync, then take
  // two deterministic manual samples.
  obs::SyncEngineGauges(exec.database());
  exec.telemetry().Tick();
  exec.telemetry().Tick();

  std::string out =
      exec.Execute("SELECT * FROM sys.metrics_history;").value();
  EXPECT_NE(out.find("query.statements"), std::string::npos);
  EXPECT_NE(out.find("pool.workers"), std::string::npos);

  // The name attribute shares the sys.metrics dotted hierarchy, so
  // `ALL pool` clamps the history to the pool.* subtree.
  std::string pool =
      exec.Execute(
              "SELECT * FROM sys.metrics_history WHERE name = ALL pool;")
          .value();
  EXPECT_NE(pool.find("pool.workers"), std::string::npos);
  EXPECT_EQ(pool.find("query.statements"), std::string::npos);
}

TEST(SysCatalogTest, SysQueriesReportsWaitColumn) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  std::string out = exec.Execute("SELECT * FROM sys.queries;").value();
  EXPECT_NE(out.find("wait_us"), std::string::npos);
}

TEST(SysCatalogTest, SysMetricsExposesPercentileRows) {
  hql::Executor exec;
  ASSERT_TRUE(exec.Execute(kFlyingScript).ok());
  ASSERT_TRUE(exec.Execute("SELECT * FROM flies;").ok());  // records a histogram
  std::string out =
      exec.Execute("SELECT * FROM sys.metrics WHERE name = ALL query;")
          .value();
  EXPECT_NE(out.find("p50_ns"), std::string::npos);
  EXPECT_NE(out.find("p99_ns"), std::string::npos);
}

TEST(QueryHistoryRingTest, BoundedAndOrdered) {
  obs::QueryHistoryRing ring(4);
  for (uint64_t i = 1; i <= 10; ++i) {
    obs::QueryStats stats;
    stats.id = i;
    stats.wall_ns = i * 100;
    ring.Append(std::move(stats));
  }
  EXPECT_EQ(ring.total_recorded(), 10u);
  EXPECT_EQ(ring.capacity(), 4u);
  std::vector<std::shared_ptr<const obs::QueryStats>> entries =
      ring.Snapshot();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries.front()->id, 7u);  // oldest surviving
  EXPECT_EQ(entries.back()->id, 10u);  // newest
}

TEST(SysCatalogTest, ExplainAnalyzeMarksVirtualScan) {
  hql::Executor exec;
  std::string out =
      exec.Execute("EXPLAIN ANALYZE SELECT * FROM sys.relations;").value();
  EXPECT_NE(out.find("virtual=true"), std::string::npos);
}

}  // namespace
}  // namespace hirel

#include "io/text_dump.h"

#include <gtest/gtest.h>

#include "core/explicate.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::ElephantFixture;
using testing::FlyingFixture;

TEST(TextDumpTest, FormatHierarchyShowsTreeAndCounts) {
  FlyingFixture f;
  std::string s = FormatHierarchy(*f.animal);
  EXPECT_NE(s.find("hierarchy animal (6 classes, 5 instances)"),
            std::string::npos);
  EXPECT_NE(s.find("bird"), std::string::npos);
  EXPECT_NE(s.find("* tweety"), std::string::npos);
  // patricia appears twice (two parents); the repeat is marked with ^.
  EXPECT_NE(s.find("* patricia ^"), std::string::npos);
}

TEST(TextDumpTest, FormatRelationRendersQuantifiersAndTruth) {
  FlyingFixture f;
  std::string s = FormatRelation(*f.flies);
  EXPECT_NE(s.find("flies (4 tuples)"), std::string::npos);
  EXPECT_NE(s.find("ALL bird"), std::string::npos);
  EXPECT_NE(s.find("| -"), std::string::npos);
  EXPECT_NE(s.find("| who"), std::string::npos);
  // Table framing.
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(TextDumpTest, FormatRelationMultiColumn) {
  ElephantFixture f;
  std::string s = FormatRelation(*f.colors);
  EXPECT_NE(s.find("| animal"), std::string::npos);
  EXPECT_NE(s.find("| color"), std::string::npos);
  EXPECT_NE(s.find("ALL royal_elephant"), std::string::npos);
  EXPECT_NE(s.find("dappled"), std::string::npos);
}

TEST(TextDumpTest, FormatFlatRelation) {
  FlyingFixture f;
  FlatRelation flat = FlatRelation::FromRows("ext", f.flies->schema(),
                                             Extension(*f.flies).value())
                          .value();
  std::string s = FormatFlatRelation(flat);
  EXPECT_NE(s.find("ext (4 rows)"), std::string::npos);
  EXPECT_NE(s.find("tweety"), std::string::npos);
  EXPECT_EQ(s.find("ALL"), std::string::npos);
}

TEST(TextDumpTest, FormatExtension) {
  FlyingFixture f;
  std::string s = FormatExtension(f.flies->schema(),
                                  Extension(*f.flies).value(), "the flyers");
  EXPECT_NE(s.find("the flyers"), std::string::npos);
  EXPECT_NE(s.find("patricia"), std::string::npos);
  EXPECT_EQ(s.find("paul"), std::string::npos);
}

TEST(TextDumpTest, EmptyRelationStillRendersHeader) {
  FlyingFixture f;
  f.flies->Clear();
  std::string s = FormatRelation(*f.flies);
  EXPECT_NE(s.find("flies (0 tuples)"), std::string::npos);
  EXPECT_NE(s.find("| who"), std::string::npos);
}


TEST(TextDumpTest, FormatHierarchyDot) {
  FlyingFixture f;
  ASSERT_TRUE(f.animal->AddPreferenceEdge(f.galapagos, f.afp).ok());
  std::string dot = FormatHierarchyDot(*f.animal);
  EXPECT_NE(dot.find("digraph \"animal\""), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);      // classes
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);  // instances
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);   // preference
  // One edge line per subsumption edge plus the preference edge.
  size_t arrows = 0;
  for (size_t pos = dot.find(" -> "); pos != std::string::npos;
       pos = dot.find(" -> ", pos + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, f.animal->dag().num_edges() + 1);
}

}  // namespace
}  // namespace hirel

#include "extensions/three_valued.h"

#include <gtest/gtest.h>

#include "core/inference.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::ElephantFixture;
using testing::FlyingFixture;
using testing::RespectsFixture;

TEST(Truth3Test, KleeneConnectives) {
  using enum Truth3;
  EXPECT_EQ(And3(kTrue, kTrue), kTrue);
  EXPECT_EQ(And3(kTrue, kUnknown), kUnknown);
  EXPECT_EQ(And3(kFalse, kUnknown), kFalse);
  EXPECT_EQ(Or3(kFalse, kFalse), kFalse);
  EXPECT_EQ(Or3(kFalse, kUnknown), kUnknown);
  EXPECT_EQ(Or3(kTrue, kUnknown), kTrue);
  EXPECT_EQ(Not3(kTrue), kFalse);
  EXPECT_EQ(Not3(kFalse), kTrue);
  EXPECT_EQ(Not3(kUnknown), kUnknown);
  EXPECT_STREQ(Truth3ToString(kUnknown), "unknown");
}

TEST(ThreeValuedTest, KnownVerdictsMatchClosedWorld) {
  FlyingFixture f;
  EXPECT_EQ(InferOpenWorld(*f.flies, {f.tweety}).value(), Truth3::kTrue);
  EXPECT_EQ(InferOpenWorld(*f.flies, {f.paul}).value(), Truth3::kFalse);
  EXPECT_EQ(InferOpenWorld(*f.flies, {f.peter}).value(), Truth3::kTrue);
}

TEST(ThreeValuedTest, UncoveredItemsAreUnknownNotFalse) {
  FlyingFixture f;
  NodeId rex = f.animal->AddInstance(Value::String("rex")).value();
  // The closed world calls rex a non-flyer; the open world admits
  // ignorance.
  EXPECT_EQ(InferTruth(*f.flies, {rex}).value(), Truth::kNegative);
  EXPECT_EQ(InferOpenWorld(*f.flies, {rex}).value(), Truth3::kUnknown);
}

TEST(ThreeValuedTest, ConflictStillAnError) {
  RespectsFixture f(/*with_resolver=*/false);
  EXPECT_TRUE(InferOpenWorld(*f.respects, {f.obsequious, f.incoherent})
                  .status()
                  .IsConflict());
}

TEST(ThreeValuedTest, ArityChecked) {
  FlyingFixture f;
  EXPECT_TRUE(InferOpenWorld(*f.flies, {f.bird, f.bird}).status()
                  .IsInvalidArgument());
}

TEST(ThreeValuedTest, ForAllOverClasses) {
  FlyingFixture f;
  // All canaries fly (tweety is the only one, and inherits bird+).
  EXPECT_EQ(ForAllHolds(*f.flies, {f.canary}).value(), Truth3::kTrue);
  // Not all penguins fly (paul doesn't).
  EXPECT_EQ(ForAllHolds(*f.flies, {f.penguin}).value(), Truth3::kFalse);
  // All amazing flying penguins fly.
  EXPECT_EQ(ForAllHolds(*f.flies, {f.afp}).value(), Truth3::kTrue);
}

TEST(ThreeValuedTest, ForAllWithUnknownMember) {
  FlyingFixture f;
  // A new bird subclass outside the asserted tuples... every bird is
  // covered by bird+, so grow an unknown sibling of bird instead.
  NodeId reptile = f.animal->AddClass("reptile").value();
  NodeId iggy = f.animal->AddInstance(Value::String("iggy"), reptile).value();
  (void)iggy;
  EXPECT_EQ(ForAllHolds(*f.flies, {reptile}).value(), Truth3::kUnknown);
  // The whole domain: penguins make it false outright.
  EXPECT_EQ(ForAllHolds(*f.flies, {f.animal->root()}).value(),
            Truth3::kFalse);
}

TEST(ThreeValuedTest, ForAllOverEmptyClassIsVacuouslyTrue) {
  FlyingFixture f;
  NodeId empty = f.animal->AddClass("empty").value();
  EXPECT_EQ(ForAllHolds(*f.flies, {empty}).value(), Truth3::kTrue);
  EXPECT_EQ(ExistsHolds(*f.flies, {empty}).value(), Truth3::kFalse);
}

TEST(ThreeValuedTest, ExistsOverClasses) {
  FlyingFixture f;
  // Some penguin flies (pamela).
  EXPECT_EQ(ExistsHolds(*f.flies, {f.penguin}).value(), Truth3::kTrue);
  // No galapagos penguin is known to fly... patricia is one, and flies!
  EXPECT_EQ(ExistsHolds(*f.flies, {f.galapagos}).value(), Truth3::kTrue);
}

TEST(ThreeValuedTest, ExistsUnknownWhenOnlyIgnoranceRemains) {
  FlyingFixture f;
  NodeId reptile = f.animal->AddClass("reptile").value();
  f.animal->AddInstance(Value::String("iggy"), reptile).value();
  EXPECT_EQ(ExistsHolds(*f.flies, {reptile}).value(), Truth3::kUnknown);
  // Denying the whole reptile class settles it.
  ASSERT_TRUE(f.flies->Insert({reptile}, Truth::kNegative).ok());
  EXPECT_EQ(ExistsHolds(*f.flies, {reptile}).value(), Truth3::kFalse);
}

TEST(ThreeValuedTest, MultiAttributeQuantifiers) {
  ElephantFixture f;
  // Does every royal elephant have some colour assertion? ForAll over
  // (royal, color-root): clyde x grey is false, so the universal fails.
  EXPECT_EQ(
      ForAllHolds(*f.colors, {f.royal, f.color->root()}).value(),
      Truth3::kFalse);
  // Some royal elephant is white (appu).
  EXPECT_EQ(ExistsHolds(*f.colors, {f.royal, f.white}).value(),
            Truth3::kTrue);
  // Is some indian elephant dappled? Appu is the only indian, and nothing
  // asserted speaks to (appu, dappled) either way: open-world unknown.
  EXPECT_EQ(ExistsHolds(*f.colors, {f.indian, f.dappled}).value(),
            Truth3::kUnknown);
  // Is some indian elephant grey? Appu's royal side cancels grey: false.
  EXPECT_EQ(ExistsHolds(*f.colors, {f.indian, f.grey}).value(),
            Truth3::kFalse);
}

TEST(ThreeValuedTest, OpenWorldAgreesWithClosedWhereCovered) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    testing::RandomDatabase rdb(seed, {});
    for (NodeId atom : rdb.hierarchy(0)->Instances()) {
      Result<Truth3> open = InferOpenWorld(*rdb.relation(), {atom});
      ASSERT_TRUE(open.ok());
      if (*open == Truth3::kUnknown) {
        // Closed world maps unknown to false.
        EXPECT_EQ(InferTruth(*rdb.relation(), {atom}).value(),
                  Truth::kNegative);
      } else {
        EXPECT_EQ(InferTruth(*rdb.relation(), {atom}).value(),
                  *open == Truth3::kTrue ? Truth::kPositive
                                         : Truth::kNegative);
      }
    }
  }
}

}  // namespace
}  // namespace hirel

#include "core/transaction.h"

#include <gtest/gtest.h>

#include "core/conflict.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

using testing::RespectsFixture;

TEST(TransactionTest, CommitAppliesStagedOps) {
  RespectsFixture f(/*with_resolver=*/true);
  Transaction txn(f.respects);
  NodeId lazy = f.student->AddClass("lazy_student").value();
  txn.Deny({lazy, f.teacher->root()});
  EXPECT_EQ(txn.num_staged(), 1u);
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(txn.num_staged(), 0u);
  EXPECT_EQ(f.respects->TruthAt({lazy, f.teacher->root()}),
            Truth::kNegative);
}

TEST(TransactionTest, ConflictingBatchIsRolledBackAtomically) {
  RespectsFixture f(/*with_resolver=*/true);
  size_t size_before = f.respects->size();
  Transaction txn(f.respects);
  NodeId strict = f.teacher->AddClass("strict_teacher").value();
  txn.Assert({f.student->root(), strict});  // harmless
  // Removing the resolver re-creates the Fig. 3 conflict.
  txn.Erase({f.obsequious, f.incoherent});
  Status s = txn.Commit();
  ASSERT_TRUE(s.IsConflict());
  // The transaction aborted: staged ops are discarded...
  EXPECT_EQ(txn.num_staged(), 0u);
  // ...and both applied ops rolled back, including the harmless one.
  EXPECT_EQ(f.respects->size(), size_before);
  EXPECT_FALSE(f.respects->FindItem({f.student->root(), strict}).has_value());
  EXPECT_TRUE(f.respects->FindItem({f.obsequious, f.incoherent}).has_value());
}

TEST(TransactionTest, ConflictCreatedAndResolvedWithinOneTransaction) {
  // Section 3.1: "If an update creates a conflict, within the same
  // transaction ... other updates must be made that resolve the conflict."
  RespectsFixture f(/*with_resolver=*/false);
  ASSERT_TRUE(
      f.respects->EraseItem({f.student->root(), f.incoherent}).ok());
  Transaction txn(f.respects);
  txn.Deny({f.student->root(), f.incoherent});    // would conflict alone
  txn.Assert({f.obsequious, f.incoherent});       // resolves it
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(CheckAmbiguity(*f.respects).ok());
  EXPECT_EQ(f.respects->size(), 3u);
}

TEST(TransactionTest, MidTransactionFailureRollsBackPrefix) {
  RespectsFixture f(/*with_resolver=*/true);
  size_t size_before = f.respects->size();
  Transaction txn(f.respects);
  NodeId strict = f.teacher->AddClass("strict_teacher").value();
  txn.Assert({f.student->root(), strict});
  txn.Erase({f.mary, f.wendy});  // no such tuple: the op itself fails
  Status s = txn.Commit();
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(f.respects->size(), size_before);
}

TEST(TransactionTest, EraseRestoredWithOriginalTruth) {
  RespectsFixture f(/*with_resolver=*/true);
  Transaction txn(f.respects);
  txn.Erase({f.student->root(), f.incoherent});  // negative tuple
  txn.Erase({f.mary, f.wendy});                  // fails -> rollback
  ASSERT_FALSE(txn.Commit().ok());
  EXPECT_EQ(f.respects->TruthAt({f.student->root(), f.incoherent}),
            Truth::kNegative);
}

TEST(TransactionTest, RollbackDiscardsStagedOps) {
  RespectsFixture f(/*with_resolver=*/true);
  Transaction txn(f.respects);
  txn.Assert({f.john, f.wendy});
  txn.Rollback();
  EXPECT_EQ(txn.num_staged(), 0u);
  ASSERT_TRUE(txn.Commit().ok());  // empty commit is a no-op
  EXPECT_FALSE(f.respects->FindItem({f.john, f.wendy}).has_value());
}

TEST(TransactionTest, ReusableAfterCommit) {
  RespectsFixture f(/*with_resolver=*/true);
  Transaction txn(f.respects);
  txn.Assert({f.john, f.wendy});
  ASSERT_TRUE(txn.Commit().ok());
  txn.Erase({f.john, f.wendy});
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_FALSE(f.respects->FindItem({f.john, f.wendy}).has_value());
}

}  // namespace
}  // namespace hirel

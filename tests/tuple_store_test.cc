// TupleStore contracts: stable ids across churn, cross-store equivalence
// (row and columnar must be observationally identical, probe counts
// included, at any thread count), dictionary promotion, and chunked
// iteration.

#include "core/tuple_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "algebra/select.h"
#include "algebra/setops.h"
#include "common/random.h"
#include "core/consolidate.h"
#include "testing/fixtures.h"

namespace hirel {
namespace {

class TupleStoreKindTest : public ::testing::TestWithParam<StorageKind> {};

INSTANTIATE_TEST_SUITE_P(Kinds, TupleStoreKindTest,
                         ::testing::Values(StorageKind::kRow,
                                           StorageKind::kColumnar),
                         [](const auto& info) {
                           return StorageKindToString(info.param);
                         });

/// Ids are sequential append positions, never reused across erase/insert
/// churn, and upserts keep the original tuple's id.
TEST_P(TupleStoreKindTest, TupleIdsAreStableAcrossChurn) {
  Database db;
  Hierarchy* h =
      testing::BuildTreeHierarchy(db, "d", /*depth=*/1, /*fanout=*/1,
                                  /*instances_per_leaf=*/64);
  HierarchicalRelation r("r", Schema({{"v", h}}), GetParam());
  std::vector<NodeId> atoms = h->Instances();

  std::vector<TupleId> ids;
  for (size_t i = 0; i < 8; ++i) {
    ids.push_back(r.Insert({atoms[i]}, Truth::kPositive).value());
    EXPECT_EQ(ids.back(), static_cast<TupleId>(i));
  }
  // Erase a middle run; survivors keep their ids.
  ASSERT_TRUE(r.Erase(ids[2]).ok());
  ASSERT_TRUE(r.EraseItem({atoms[5]}).ok());
  EXPECT_EQ(r.TupleIds(), (std::vector<TupleId>{0, 1, 3, 4, 6, 7}));
  EXPECT_EQ(r.FindItem({atoms[4]}), std::optional<TupleId>(4));
  EXPECT_FALSE(r.FindItem({atoms[5]}).has_value());

  // New inserts continue the sequence: erased ids are never reused, even
  // for the very item that was erased.
  EXPECT_EQ(r.Insert({atoms[5]}, Truth::kNegative).value(), TupleId{8});
  EXPECT_EQ(r.Insert({atoms[8]}, Truth::kPositive).value(), TupleId{9});

  // Upsert on a live item flips truth in place, keeping the id.
  EXPECT_EQ(r.Upsert({atoms[0]}, Truth::kNegative).value(), TupleId{0});
  EXPECT_EQ(r.TruthOf(0), Truth::kNegative);
  EXPECT_EQ(r.size(), 8u);

  // Clear resets the id space.
  r.Clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.Insert({atoms[3]}, Truth::kPositive).value(), TupleId{0});
}

TEST_P(TupleStoreKindTest, DuplicateAndContradictionPolicyHolds) {
  Database db;
  Hierarchy* h = testing::BuildTreeHierarchy(db, "d", 1, 1, 4);
  HierarchicalRelation r("r", Schema({{"v", h}}), GetParam());
  NodeId atom = h->Instances()[0];
  ASSERT_TRUE(r.Insert({atom}, Truth::kPositive).ok());
  EXPECT_TRUE(r.Insert({atom}, Truth::kPositive).status().IsAlreadyExists());
  EXPECT_TRUE(
      r.Insert({atom}, Truth::kNegative).status().IsIntegrityViolation());
}

TEST_P(TupleStoreKindTest, CopyPreservesIdsDeadSlotsAndVersion) {
  Database db;
  Hierarchy* h = testing::BuildTreeHierarchy(db, "d", 1, 1, 8);
  HierarchicalRelation r("r", Schema({{"v", h}}), GetParam());
  std::vector<NodeId> atoms = h->Instances();
  for (size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(r.Insert({atoms[i]}, Truth::kPositive).ok());
  }
  ASSERT_TRUE(r.Erase(1).ok());
  ASSERT_TRUE(r.Erase(4).ok());

  HierarchicalRelation copy = r;
  EXPECT_EQ(copy.version(), r.version());
  EXPECT_EQ(copy.storage_kind(), GetParam());
  EXPECT_EQ(copy.TupleIds(), r.TupleIds());
  EXPECT_EQ(copy.ToString(), r.ToString());
  // The copy's next id continues past the dead slots, like the original's.
  EXPECT_EQ(copy.Insert({atoms[6]}, Truth::kPositive).value(), TupleId{6});
}

/// Concatenating chunk scans in chunk order reproduces LiveIds exactly,
/// with a slot population larger than one chunk and holes punched in it.
TEST_P(TupleStoreKindTest, ChunkScansCoverExactlyTheLiveIds) {
  Database db;
  constexpr size_t kTuples = 3000;  // ~3 chunks of 1024
  Hierarchy* h = testing::BuildTreeHierarchy(db, "d", 1, 1, kTuples);
  HierarchicalRelation r("r", Schema({{"v", h}}), GetParam());
  for (NodeId atom : h->Instances()) {
    ASSERT_TRUE(r.Insert({atom}, Truth::kPositive).ok());
  }
  // Punch deterministic holes, including a fully dead stretch that empties
  // most of the middle chunk.
  for (TupleId id = 0; id < kTuples; id += 7) {
    ASSERT_TRUE(r.Erase(id).ok());
  }
  for (TupleId id = 1100; id < 2000; ++id) {
    if (r.alive(id)) {
      ASSERT_TRUE(r.Erase(id).ok());
    }
  }

  EXPECT_EQ(r.num_chunks(), (kTuples + 1023) / 1024);
  std::vector<TupleId> chunked;
  for (size_t c = 0; c < r.num_chunks(); ++c) {
    r.ForEachLiveInChunk(c, [&](TupleId id) { chunked.push_back(id); });
  }
  EXPECT_EQ(chunked, r.TupleIds());
}

/// Drives row and columnar relations through an identical randomized op
/// sequence and requires them to be observationally identical: rendering,
/// subsumption scans, kernel outputs, and exact probe counts at thread
/// counts 1 and 4.
TEST(TupleStoreEquivalenceTest, RowAndColumnarAreObservationallyEqual) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Database db;
    Hierarchy* h =
        testing::BuildTreeHierarchy(db, "d", /*depth=*/2, /*fanout=*/3,
                                    /*instances_per_leaf=*/12);
    Schema schema({{"v", h}});
    HierarchicalRelation row("r", schema, StorageKind::kRow);
    HierarchicalRelation col("r", schema, StorageKind::kColumnar);

    std::vector<NodeId> nodes = h->Instances();
    std::vector<NodeId> classes = h->Classes();
    nodes.insert(nodes.end(), classes.begin() + 1, classes.end());

    Random rng(seed);
    for (size_t step = 0; step < 200; ++step) {
      NodeId node = nodes[rng.Index(nodes.size())];
      Item item{node};
      Truth truth = rng.Bernoulli(0.3) ? Truth::kNegative : Truth::kPositive;
      switch (rng.Uniform(4)) {
        case 0:
        case 1: {
          Result<TupleId> a = row.Insert(item, truth);
          Result<TupleId> b = col.Insert(item, truth);
          ASSERT_EQ(a.ok(), b.ok()) << "seed " << seed << " step " << step;
          if (a.ok()) {
            ASSERT_EQ(*a, *b);
          }
          break;
        }
        case 2: {
          ASSERT_EQ(row.Upsert(item, truth).value(),
                    col.Upsert(item, truth).value());
          break;
        }
        case 3: {
          Status a = row.EraseItem(item);
          Status b = col.EraseItem(item);
          ASSERT_EQ(a.ok(), b.ok()) << "seed " << seed << " step " << step;
          break;
        }
      }
    }

    ASSERT_EQ(row.size(), col.size()) << "seed " << seed;
    EXPECT_EQ(row.ToString(), col.ToString()) << "seed " << seed;
    EXPECT_EQ(row.TupleIds(), col.TupleIds()) << "seed " << seed;
    for (NodeId probe : nodes) {
      Item item{probe};
      EXPECT_EQ(row.TuplesSubsuming(item), col.TuplesSubsuming(item))
          << "seed " << seed << " node " << probe;
      EXPECT_EQ(row.TuplesSubsumedBy(item), col.TuplesSubsumedBy(item))
          << "seed " << seed << " node " << probe;
    }

    // Kernels must produce identical outputs AND identical probe counts on
    // both layouts, serial and parallel: probes are counted per binding
    // computation, which the storage layout may not affect.
    for (size_t threads : {size_t{1}, size_t{4}}) {
      uint64_t row_probes = 0, col_probes = 0;
      InferenceOptions row_opts, col_opts;
      row_opts.threads = col_opts.threads = threads;
      row_opts.probe_counter = &row_probes;
      col_opts.probe_counter = &col_probes;

      Result<HierarchicalRelation> row_cons = Consolidated(row, row_opts);
      Result<HierarchicalRelation> col_cons = Consolidated(col, col_opts);
      ASSERT_TRUE(row_cons.ok() && col_cons.ok()) << "seed " << seed;
      EXPECT_EQ(row_cons->ToString(), col_cons->ToString())
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(row_probes, col_probes)
          << "seed " << seed << " threads " << threads;

      NodeId cls = classes[1 + rng.Index(classes.size() - 1)];
      Result<HierarchicalRelation> row_sel =
          SelectEquals(row, 0, cls, row_opts);
      Result<HierarchicalRelation> col_sel =
          SelectEquals(col, 0, cls, col_opts);
      ASSERT_EQ(row_sel.ok(), col_sel.ok()) << "seed " << seed;
      if (row_sel.ok()) {
        EXPECT_EQ(row_sel->ToString(), col_sel->ToString())
            << "seed " << seed << " threads " << threads;
      }
      EXPECT_EQ(row_probes, col_probes)
          << "seed " << seed << " threads " << threads;

      // Cross-layout set operation: mixing layouts in one kernel is fine.
      Result<HierarchicalRelation> mixed = Union(row, col, {
          .inference = row_opts});
      Result<HierarchicalRelation> pure = Union(col, col, {
          .inference = col_opts});
      ASSERT_EQ(mixed.ok(), pure.ok()) << "seed " << seed;
      if (mixed.ok()) {
        EXPECT_EQ(mixed->ToString(), pure->ToString()) << "seed " << seed;
      }
    }
  }
}

/// The dictionary starts at one byte per code and is promoted to two once
/// a column passes 256 distinct values, re-encoding what was packed so far.
TEST(ColumnarTupleStoreTest, DictionaryPromotesPastByteBoundary) {
  ColumnarTupleStore store(2);
  constexpr size_t kDistinct = 700;
  for (NodeId n = 0; n < kDistinct; ++n) {
    // First attribute cycles through 3 values; second sees them all.
    store.Append(Item{n % 3, n + 1000}, Truth::kPositive);
  }
  EXPECT_EQ(store.ColumnCodeWidth(0), 1u);
  EXPECT_EQ(store.ColumnCodeWidth(1), 2u);
  EXPECT_EQ(store.size(), kDistinct);
  // Every component survives the mid-stream re-encoding.
  for (TupleId id = 0; id < kDistinct; ++id) {
    ASSERT_EQ(store.component(id, 0), id % 3) << id;
    ASSERT_EQ(store.component(id, 1), id + 1000) << id;
    ASSERT_TRUE(store.ItemAtEquals(id, Item{id % 3, id + 1000})) << id;
  }
  // Find goes through the hash index, which stores no items.
  EXPECT_EQ(store.Find(Item{1, 1001}), std::optional<TupleId>(1));
  EXPECT_FALSE(store.Find(Item{2, 1001}).has_value());
}

/// ApproxBytes must account for index structures, not just payloads: the
/// reported footprint is the sum of the ColumnInfo breakdown, and that
/// breakdown includes a nonzero item-index line on both layouts.
TEST_P(TupleStoreKindTest, ApproxBytesIncludesIndexes) {
  Database db;
  Hierarchy* h = testing::BuildTreeHierarchy(db, "d", 1, 1, 512);
  HierarchicalRelation r("r", Schema({{"v", h}}), GetParam());
  for (NodeId atom : h->Instances()) {
    ASSERT_TRUE(r.Insert({atom}, Truth::kPositive).ok());
  }
  std::vector<StorageColumnInfo> info = r.ColumnInfo();
  size_t total = 0;
  size_t index_bytes = 0;
  for (const StorageColumnInfo& line : info) {
    total += line.bytes;
    if (line.name == "item-index" || line.name == "component-index") {
      index_bytes += line.bytes;
    }
  }
  EXPECT_EQ(r.ApproxBytes(), total);
  EXPECT_GT(index_bytes, 0u);
  // Payload alone underestimates: the full footprint is strictly larger
  // than the raw per-tuple data.
  EXPECT_GT(r.ApproxBytes(), r.size() * sizeof(NodeId));
}

}  // namespace
}  // namespace hirel

#include "types/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace hirel {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "null");
}

TEST(ValueTest, TypedConstructorsAndAccessors) {
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("x").AsString(), "x");
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Double(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::String("tweety").ToString(), "tweety");
}

TEST(ValueTest, EqualityIsTypeAware) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  EXPECT_NE(Value::Int(1), Value::Double(1.0));
  EXPECT_NE(Value::String("1"), Value::Int(1));
  EXPECT_EQ(Value::Null(), Value());
}

TEST(ValueTest, OrderingIsTotalAndTypeFirst) {
  // Null < Bool < Int < Double < String by type tag.
  EXPECT_LT(Value::Null(), Value::Bool(false));
  EXPECT_LT(Value::Bool(true), Value::Int(0));
  EXPECT_LT(Value::Int(100), Value::Double(0.0));
  EXPECT_LT(Value::Double(9.9), Value::String(""));
  // Within type: payload order.
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  EXPECT_FALSE(Value::Int(2) < Value::Int(1));
  EXPECT_FALSE(Value::Int(1) < Value::Int(1));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  EXPECT_EQ(Value::String("ab").Hash(), Value::String("ab").Hash());
  // Different types with "same" payload should (in practice) hash apart.
  EXPECT_NE(Value::Int(0).Hash(), Value::Bool(false).Hash());
}

TEST(ValueTest, UsableInUnorderedSet) {
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value::Int(1));
  set.insert(Value::Int(1));
  set.insert(Value::String("1"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(Value::Int(1)));
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeToString(ValueType::kNull), "null");
  EXPECT_STREQ(ValueTypeToString(ValueType::kBool), "bool");
  EXPECT_STREQ(ValueTypeToString(ValueType::kInt), "int");
  EXPECT_STREQ(ValueTypeToString(ValueType::kDouble), "double");
  EXPECT_STREQ(ValueTypeToString(ValueType::kString), "string");
}

}  // namespace
}  // namespace hirel

#include "io/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/inference.h"

namespace hirel {
namespace {

class WalTest : public ::testing::Test {
 protected:
  WalTest() {
    dir_ = std::string(::testing::TempDir()) + "/wal_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~WalTest() override { std::filesystem::remove_all(dir_); }

  /// Populates a durable database with the flying-creatures schema.
  void PopulateFlying(LoggedDatabase& ldb) {
    ASSERT_TRUE(ldb.CreateHierarchy("animal").ok());
    ASSERT_TRUE(ldb.AddClass("animal", "bird").ok());
    ASSERT_TRUE(ldb.AddClass("animal", "penguin", {"bird"}).ok());
    ASSERT_TRUE(ldb.AddClass("animal", "afp", {"penguin"}).ok());
    ASSERT_TRUE(
        ldb.AddInstance("animal", Value::String("tweety"), {"bird"}).ok());
    ASSERT_TRUE(
        ldb.AddInstance("animal", Value::String("paul"), {"penguin"}).ok());
    ASSERT_TRUE(ldb.CreateRelation("flies", {{"who", "animal"}}).ok());
    Hierarchy* animal = ldb.db().GetHierarchy("animal").value();
    NodeId bird = animal->FindClass("bird").value();
    NodeId penguin = animal->FindClass("penguin").value();
    ASSERT_TRUE(ldb.Insert("flies", {bird}, Truth::kPositive).ok());
    ASSERT_TRUE(ldb.Insert("flies", {penguin}, Truth::kNegative).ok());
  }

  void ExpectFlyingSemantics(LoggedDatabase& ldb) {
    Hierarchy* animal = ldb.db().GetHierarchy("animal").value();
    HierarchicalRelation* flies = ldb.db().GetRelation("flies").value();
    NodeId tweety = animal->FindInstance(Value::String("tweety")).value();
    NodeId paul = animal->FindInstance(Value::String("paul")).value();
    EXPECT_EQ(InferTruth(*flies, {tweety}).value(), Truth::kPositive);
    EXPECT_EQ(InferTruth(*flies, {paul}).value(), Truth::kNegative);
  }

  std::string dir_;
};

TEST_F(WalTest, WriterProducesReadableRecords) {
  std::string path = dir_ + "/raw.log";
  {
    std::unique_ptr<WalWriter> writer = WalWriter::Open(path).value();
    ASSERT_TRUE(writer->Append("alpha").ok());
    ASSERT_TRUE(writer->Append("").ok());
    ASSERT_TRUE(writer->Append(std::string(1000, 'x')).ok());
  }
  bool torn = true;
  std::vector<std::string> records = ReadWalRecords(path, &torn).value();
  EXPECT_FALSE(torn);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "alpha");
  EXPECT_EQ(records[1], "");
  EXPECT_EQ(records[2], std::string(1000, 'x'));
}

TEST_F(WalTest, MissingLogReadsAsEmpty) {
  bool torn = true;
  std::vector<std::string> records =
      ReadWalRecords(dir_ + "/nope.log", &torn).value();
  EXPECT_TRUE(records.empty());
  EXPECT_FALSE(torn);
}

TEST_F(WalTest, TornTailIsDroppedNotFatal) {
  std::string path = dir_ + "/torn.log";
  {
    std::unique_ptr<WalWriter> writer = WalWriter::Open(path).value();
    ASSERT_TRUE(writer->Append("first").ok());
    ASSERT_TRUE(writer->Append("second-record-payload").ok());
  }
  // Chop bytes off the end, simulating a crash mid-write.
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);
  bool torn = false;
  std::vector<std::string> records = ReadWalRecords(path, &torn).value();
  EXPECT_TRUE(torn);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "first");
}

TEST_F(WalTest, MidLogCorruptionIsFatal) {
  std::string path = dir_ + "/corrupt.log";
  {
    std::unique_ptr<WalWriter> writer = WalWriter::Open(path).value();
    ASSERT_TRUE(writer->Append("first-record").ok());
    ASSERT_TRUE(writer->Append("second-record").ok());
  }
  // Flip a payload byte of the FIRST record.
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(3);
  file.put('X');
  file.close();
  EXPECT_TRUE(ReadWalRecords(path, nullptr).status().IsCorruption());
}

TEST_F(WalTest, OpenInitialisesEmptyDirectory) {
  std::unique_ptr<LoggedDatabase> ldb = LoggedDatabase::Open(dir_).value();
  EXPECT_EQ(ldb->replayed_records(), 0u);
  EXPECT_TRUE(ldb->db().HierarchyNames().empty());
}

TEST_F(WalTest, OpenRejectsMissingDirectory) {
  EXPECT_TRUE(LoggedDatabase::Open(dir_ + "/missing").status()
                  .IsInvalidArgument());
}

TEST_F(WalTest, ReopenReplaysEverything) {
  {
    std::unique_ptr<LoggedDatabase> ldb = LoggedDatabase::Open(dir_).value();
    PopulateFlying(*ldb);
  }  // no checkpoint: everything lives in the log
  std::unique_ptr<LoggedDatabase> reopened =
      LoggedDatabase::Open(dir_).value();
  EXPECT_GT(reopened->replayed_records(), 0u);
  ExpectFlyingSemantics(*reopened);
}

TEST_F(WalTest, CheckpointShortensReplay) {
  {
    std::unique_ptr<LoggedDatabase> ldb = LoggedDatabase::Open(dir_).value();
    PopulateFlying(*ldb);
    ASSERT_TRUE(ldb->Checkpoint().ok());
    // Post-checkpoint mutation lands in the fresh log.
    Hierarchy* animal = ldb->db().GetHierarchy("animal").value();
    NodeId bird = animal->FindClass("bird").value();
    ASSERT_TRUE(
        ldb->AddInstance("animal", Value::String("robin"), {"bird"}).ok());
    (void)bird;
  }
  std::unique_ptr<LoggedDatabase> reopened =
      LoggedDatabase::Open(dir_).value();
  EXPECT_EQ(reopened->replayed_records(), 1u);  // just the robin
  ExpectFlyingSemantics(*reopened);
  EXPECT_TRUE(reopened->db()
                  .GetHierarchy("animal")
                  .value()
                  ->FindInstance(Value::String("robin"))
                  .ok());
}

TEST_F(WalTest, CrashAfterCheckpointTornLogRecovers) {
  {
    std::unique_ptr<LoggedDatabase> ldb = LoggedDatabase::Open(dir_).value();
    PopulateFlying(*ldb);
    ASSERT_TRUE(ldb->Checkpoint().ok());
    ASSERT_TRUE(
        ldb->AddInstance("animal", Value::String("robin"), {"bird"}).ok());
    ASSERT_TRUE(
        ldb->AddInstance("animal", Value::String("sparrow"), {"bird"}).ok());
  }
  // Tear the final record.
  std::string wal = dir_ + "/wal.log";
  auto size = std::filesystem::file_size(wal);
  std::filesystem::resize_file(wal, size - 3);

  std::unique_ptr<LoggedDatabase> reopened =
      LoggedDatabase::Open(dir_).value();
  EXPECT_EQ(reopened->replayed_records(), 1u);  // robin survived
  Hierarchy* animal = reopened->db().GetHierarchy("animal").value();
  EXPECT_TRUE(animal->FindInstance(Value::String("robin")).ok());
  EXPECT_FALSE(animal->FindInstance(Value::String("sparrow")).ok());
  // The torn tail was excised: reopening again replays the same prefix.
  reopened.reset();
  std::unique_ptr<LoggedDatabase> again = LoggedDatabase::Open(dir_).value();
  EXPECT_EQ(again->replayed_records(), 1u);
}

TEST_F(WalTest, GuardedInsertFailuresAreNotLogged) {
  {
    std::unique_ptr<LoggedDatabase> ldb = LoggedDatabase::Open(dir_).value();
    PopulateFlying(*ldb);
    Hierarchy* animal = ldb->db().GetHierarchy("animal").value();
    NodeId bird = animal->FindClass("bird").value();
    // Contradiction: rejected and must not reach the log.
    EXPECT_FALSE(ldb->Insert("flies", {bird}, Truth::kNegative).ok());
  }
  std::unique_ptr<LoggedDatabase> reopened =
      LoggedDatabase::Open(dir_).value();
  ExpectFlyingSemantics(*reopened);
}

TEST_F(WalTest, EraseAndDropsAreReplayed) {
  {
    std::unique_ptr<LoggedDatabase> ldb = LoggedDatabase::Open(dir_).value();
    PopulateFlying(*ldb);
    Hierarchy* animal = ldb->db().GetHierarchy("animal").value();
    NodeId penguin = animal->FindClass("penguin").value();
    ASSERT_TRUE(ldb->EraseItem("flies", {penguin}).ok());
    ASSERT_TRUE(ldb->CreateRelation("tmp", {{"who", "animal"}}).ok());
    ASSERT_TRUE(ldb->DropRelation("tmp").ok());
  }
  std::unique_ptr<LoggedDatabase> reopened =
      LoggedDatabase::Open(dir_).value();
  HierarchicalRelation* flies = reopened->db().GetRelation("flies").value();
  EXPECT_EQ(flies->size(), 1u);  // the penguin exception is gone
  EXPECT_TRUE(reopened->db().GetRelation("tmp").status().IsNotFound());
}

TEST_F(WalTest, PreferenceEdgesAndMultiParentsSurviveReplay) {
  {
    std::unique_ptr<LoggedDatabase> ldb = LoggedDatabase::Open(dir_).value();
    ASSERT_TRUE(ldb->CreateHierarchy("d").ok());
    ASSERT_TRUE(ldb->AddClass("d", "a").ok());
    ASSERT_TRUE(ldb->AddClass("d", "b").ok());
    ASSERT_TRUE(
        ldb->AddInstance("d", Value::String("x"), {"a"}).ok());
    ASSERT_TRUE(ldb->AddEdge("d", "b", "x").ok());
    ASSERT_TRUE(ldb->AddPreferenceEdge("d", "a", "b").ok());
  }
  std::unique_ptr<LoggedDatabase> reopened =
      LoggedDatabase::Open(dir_).value();
  Hierarchy* h = reopened->db().GetHierarchy("d").value();
  NodeId a = h->FindClass("a").value();
  NodeId b = h->FindClass("b").value();
  NodeId x = h->FindInstance(Value::String("x")).value();
  EXPECT_TRUE(h->Subsumes(a, x));
  EXPECT_TRUE(h->Subsumes(b, x));
  EXPECT_TRUE(h->BindsBelow(a, b));
}

TEST_F(WalTest, StorageKindSurvivesReplayAndCheckpoint) {
  const StorageKind session_default = DefaultStorageKind();
  {
    std::unique_ptr<LoggedDatabase> ldb = LoggedDatabase::Open(dir_).value();
    ASSERT_TRUE(ldb->CreateHierarchy("animal").ok());
    ASSERT_TRUE(ldb->AddClass("animal", "bird").ok());
    SetDefaultStorageKind(StorageKind::kColumnar);
    ASSERT_TRUE(ldb->CreateRelation("col_rel", {{"who", "animal"}}).ok());
    SetDefaultStorageKind(StorageKind::kRow);
    ASSERT_TRUE(ldb->CreateRelation("row_rel", {{"who", "animal"}}).ok());
    Hierarchy* animal = ldb->db().GetHierarchy("animal").value();
    NodeId bird = animal->FindClass("bird").value();
    ASSERT_TRUE(ldb->Insert("col_rel", {bird}, Truth::kPositive).ok());
  }
  SetDefaultStorageKind(session_default);
  // Replay from the log alone: each relation keeps its creation-time kind,
  // independent of the session default at replay time.
  {
    std::unique_ptr<LoggedDatabase> reopened =
        LoggedDatabase::Open(dir_).value();
    EXPECT_EQ(reopened->db().GetRelation("col_rel").value()->storage_kind(),
              StorageKind::kColumnar);
    EXPECT_EQ(reopened->db().GetRelation("row_rel").value()->storage_kind(),
              StorageKind::kRow);
    EXPECT_EQ(reopened->db().GetRelation("col_rel").value()->size(), 1u);
    ASSERT_TRUE(reopened->Checkpoint().ok());
  }
  // And through the snapshot a checkpoint writes.
  std::unique_ptr<LoggedDatabase> again = LoggedDatabase::Open(dir_).value();
  EXPECT_EQ(again->replayed_records(), 0u);
  EXPECT_EQ(again->db().GetRelation("col_rel").value()->storage_kind(),
            StorageKind::kColumnar);
  EXPECT_EQ(again->db().GetRelation("row_rel").value()->storage_kind(),
            StorageKind::kRow);
}

TEST_F(WalTest, IntValuesRoundTripThroughLog) {
  {
    std::unique_ptr<LoggedDatabase> ldb = LoggedDatabase::Open(dir_).value();
    ASSERT_TRUE(ldb->CreateHierarchy("sz").ok());
    ASSERT_TRUE(ldb->AddInstance("sz", Value::Int(-3000)).ok());
    ASSERT_TRUE(ldb->AddInstance("sz", Value::Double(2.5)).ok());
  }
  std::unique_ptr<LoggedDatabase> reopened =
      LoggedDatabase::Open(dir_).value();
  Hierarchy* sz = reopened->db().GetHierarchy("sz").value();
  EXPECT_TRUE(sz->FindInstance(Value::Int(-3000)).ok());
  EXPECT_TRUE(sz->FindInstance(Value::Double(2.5)).ok());
}

}  // namespace
}  // namespace hirel

#!/usr/bin/env bash
# Runs every bench_* binary in a build tree and collects the uniform JSON
# lines (one per benchmark run, emitted by bench_json_main.h) into a single
# summary file.
#
#   tools/bench.sh                       # build/release, out/bench_summary.jsonl
#   tools/bench.sh build/asan-ubsan      # another build tree
#   tools/bench.sh build/release out.jsonl --benchmark_min_time=0.05s
#
# Extra arguments after the summary path are passed to every binary.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build/release}"
summary="${2:-${build_dir}/bench_summary.jsonl}"
shift $(( $# > 2 ? 2 : $# )) || true

if [ ! -d "${build_dir}/bench" ]; then
  echo "error: ${build_dir}/bench not found (build the '${build_dir##*/}' preset first)" >&2
  exit 1
fi

benches=( "${build_dir}"/bench/bench_* )
if [ ! -e "${benches[0]}" ]; then
  echo "error: no bench_* binaries under ${build_dir}/bench" >&2
  exit 1
fi

mkdir -p "$(dirname "${summary}")"
: > "${summary}"

tmp="$(mktemp)"
trap 'rm -f "${tmp}"' EXIT

for bin in "${benches[@]}"; do
  [ -x "${bin}" ] || continue
  echo "==== $(basename "${bin}") ===="
  # Color off: ANSI escapes from the console table would otherwise prefix
  # the JSON lines and break the extraction below.
  if ! "${bin}" --benchmark_color=false "$@" > "${tmp}" 2>&1; then
    cat "${tmp}"
    echo "error: $(basename "${bin}") failed" >&2
    exit 1
  fi
  cat "${tmp}"
  # Only the JSON lines land in the summary, so downstream tooling never
  # parses the human-readable table. A binary may contribute none (e.g.
  # when --benchmark_filter excludes all of its benchmarks).
  grep -o '{"bench".*}' "${tmp}" >> "${summary}" || true
done

echo "wrote $(wc -l < "${summary}") benchmark results to ${summary}"

baselines=( BENCH_*.json )

# The committed baselines embed the recording host's context. If this
# machine has a different core count, per-op times (especially the
# parallel suites) are not comparable — warn loudly so nobody reads the
# diff below as a regression. num_cpus is extracted with sed, not
# python3, so the warning fires on minimal hosts too.
if [ -e "${baselines[0]}" ]; then
  host_cores=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 0)
  for baseline in "${baselines[@]}"; do
    base_cores=$(sed -n 's/^[[:space:]]*"num_cpus":[[:space:]]*\([0-9]*\).*/\1/p' \
        "${baseline}" | head -n 1)
    [ -n "${base_cores}" ] || continue
    if [ "${host_cores}" != "0" ] && [ "${host_cores}" != "${base_cores}" ]; then
      echo "" >&2
      echo "!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!" >&2
      echo "!! WARNING: ${baseline} was recorded on a ${base_cores}-core host," >&2
      echo "!! but this machine has ${host_cores} cores. The baseline diff" >&2
      echo "!! below is NOT comparable — re-record the baseline on this" >&2
      echo "!! hardware before treating any delta as a regression." >&2
      echo "!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!" >&2
      echo "" >&2
    fi
  done
fi

# Diff this run against the committed BENCH_<name>.json baselines (native
# google-benchmark JSON, recorded with --benchmark_out). Matching is by
# benchmark name within the corresponding bench_<name> binary; baselines
# recorded on different hardware drift, so this is informational only and
# never fails the run.
if ! command -v python3 >/dev/null 2>&1; then
  echo "python3 not found; skipping baseline diff"
  exit 0
fi
if [ ! -e "${baselines[0]}" ]; then
  echo "no committed BENCH_*.json baselines; skipping baseline diff"
  exit 0
fi
python3 - "${summary}" "${baselines[@]}" <<'PYEOF'
import json, os, sys

summary_path, *baseline_paths = sys.argv[1:]

# name -> ns_per_op from this run's summary lines.
current = {}
with open(summary_path) as f:
    for line in f:
        try:
            run = json.loads(line)
        except json.JSONDecodeError:
            continue
        current[(run.get("bench"), run.get("name"))] = run.get("ns_per_op")

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
for path in baseline_paths:
    # BENCH_parallel.json holds runs of bench_parallel.
    bench = "bench_" + os.path.basename(path)[len("BENCH_"):-len(".json")]
    with open(path) as f:
        baseline = json.load(f)
    rows = []
    for run in baseline.get("benchmarks", []):
        if run.get("run_type", "iteration") == "aggregate":
            continue
        name = run["name"]
        now = current.get((bench, name))
        if now is None:
            continue
        base_ns = run["real_time"] * UNIT_NS.get(run.get("time_unit", "ns"), 1.0)
        delta = 100.0 * (now - base_ns) / base_ns if base_ns else 0.0
        rows.append((name, base_ns, now, delta))
    print(f"==== baseline diff: {path} ({bench}) ====")
    if not rows:
        print("  (no matching benchmarks in this run)")
        continue
    for name, base_ns, now, delta in rows:
        print(f"  {name:<40} {base_ns:>12.0f} ns -> {now:>12.0f} ns  "
              f"({delta:+.1f}%)")
PYEOF

# Perf gate for the incremental-maintenance path. Unlike the informational
# diff above this one FAILS the run: (a) any bench_incremental benchmark
# more than 25% slower than the committed BENCH_incremental.json baseline
# — enforced only when this host's core count matches the recording
# host's, since per-op times are not comparable across hardware — and
# (b) regardless of hardware, the patched mutate-then-query loop must be
# at least 10x faster than the full-rebuild loop at the largest size both
# were measured at in THIS run.
if [ -e BENCH_incremental.json ]; then
  inc_cores=$(sed -n 's/^[[:space:]]*"num_cpus":[[:space:]]*\([0-9]*\).*/\1/p' \
      BENCH_incremental.json | head -n 1)
  gate_baseline=0
  if [ -n "${inc_cores}" ] && [ "${host_cores}" = "${inc_cores}" ]; then
    gate_baseline=1
  else
    echo "bench_incremental regression gate: skipped (baseline host has" \
         "${inc_cores:-unknown} cores, this host ${host_cores})"
  fi
  GATE_BASELINE="${gate_baseline}" python3 - "${summary}" \
      BENCH_incremental.json <<'PYEOF'
import json, os, sys

summary_path, baseline_path = sys.argv[1:]
gate_baseline = os.environ.get("GATE_BASELINE") == "1"

current = {}
with open(summary_path) as f:
    for line in f:
        try:
            run = json.loads(line)
        except json.JSONDecodeError:
            continue
        if run.get("bench") == "bench_incremental":
            current[run.get("name")] = run.get("ns_per_op")

failed = False

if gate_baseline:
    UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    with open(baseline_path) as f:
        baseline = json.load(f)
    print("==== bench_incremental regression gate (threshold +25%) ====")
    for run in baseline.get("benchmarks", []):
        if run.get("run_type", "iteration") == "aggregate":
            continue
        name = run["name"]
        now = current.get(name)
        if now is None:
            continue
        base_ns = run["real_time"] * UNIT_NS.get(run.get("time_unit", "ns"), 1.0)
        delta = 100.0 * (now - base_ns) / base_ns if base_ns else 0.0
        verdict = "FAIL" if delta > 25.0 else "ok"
        if delta > 25.0:
            failed = True
        print(f"  {name:<44} {base_ns:>12.0f} ns -> {now:>12.0f} ns  "
              f"({delta:+.1f}%) {verdict}")

# Speedup invariant, hardware-independent: patched vs rebuilt at the
# largest size with both arms in this run.
pairs = {}
for name, ns in current.items():
    if not name.startswith("BM_MutateThenGetGraph/"):
        continue
    parts = name.split("/")
    if len(parts) != 3 or ns is None:
        continue
    pairs.setdefault(int(parts[1]), {})[parts[2]] = ns
sizes = [n for n, arms in sorted(pairs.items()) if "0" in arms and "1" in arms]
if sizes:
    n = sizes[-1]
    speedup = pairs[n]["0"] / pairs[n]["1"]
    print(f"==== bench_incremental speedup gate: {speedup:.1f}x at "
          f"{n} tuples (minimum 10x) ====")
    if speedup < 10.0:
        failed = True
        print("  FAIL: patched loop is less than 10x faster than rebuild")

if failed:
    sys.exit(1)
PYEOF
fi

#!/usr/bin/env bash
# Runs every bench_* binary in a build tree and collects the uniform JSON
# lines (one per benchmark run, emitted by bench_json_main.h) into a single
# summary file.
#
#   tools/bench.sh                       # build/release, out/bench_summary.jsonl
#   tools/bench.sh build/asan-ubsan      # another build tree
#   tools/bench.sh build/release out.jsonl --benchmark_min_time=0.05s
#
# Extra arguments after the summary path are passed to every binary.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build/release}"
summary="${2:-${build_dir}/bench_summary.jsonl}"
shift $(( $# > 2 ? 2 : $# )) || true

if [ ! -d "${build_dir}/bench" ]; then
  echo "error: ${build_dir}/bench not found (build the '${build_dir##*/}' preset first)" >&2
  exit 1
fi

benches=( "${build_dir}"/bench/bench_* )
if [ ! -e "${benches[0]}" ]; then
  echo "error: no bench_* binaries under ${build_dir}/bench" >&2
  exit 1
fi

mkdir -p "$(dirname "${summary}")"
: > "${summary}"

tmp="$(mktemp)"
trap 'rm -f "${tmp}"' EXIT

for bin in "${benches[@]}"; do
  [ -x "${bin}" ] || continue
  echo "==== $(basename "${bin}") ===="
  # Color off: ANSI escapes from the console table would otherwise prefix
  # the JSON lines and break the extraction below.
  if ! "${bin}" --benchmark_color=false "$@" > "${tmp}" 2>&1; then
    cat "${tmp}"
    echo "error: $(basename "${bin}") failed" >&2
    exit 1
  fi
  cat "${tmp}"
  # Only the JSON lines land in the summary, so downstream tooling never
  # parses the human-readable table. A binary may contribute none (e.g.
  # when --benchmark_filter excludes all of its benchmarks).
  grep -o '{"bench".*}' "${tmp}" >> "${summary}" || true
done

echo "wrote $(wc -l < "${summary}") benchmark results to ${summary}"

#!/usr/bin/env bash
# Local CI: configure, build, and test the release, asan-ubsan, and tsan
# presets. The tsan lane is narrow by design: it builds and runs only the
# threading-sensitive suites (concurrency, plan property, parallel
# determinism) so the sweep stays fast while still exercising every lock,
# latch, and snapshot-publication path under ThreadSanitizer.
#
#   tools/ci.sh            # all three presets
#   tools/ci.sh release    # just one
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(release asan-ubsan tsan)
fi

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

tsan_targets=(hirel_concurrency_test hirel_plan_test
              hirel_parallel_determinism_test hirel_incremental_test)
tsan_filter='ConcurrencyTest|PlanProperty|ParallelDeterminismTest|Incremental'

for preset in "${presets[@]}"; do
  echo "==== ${preset}: configure ===="
  cmake --preset "${preset}"
  if [ "${preset}" = "tsan" ]; then
    echo "==== ${preset}: build (threaded suites) ===="
    cmake --build --preset "${preset}" -j "${jobs}" \
        --target "${tsan_targets[@]}"
    for storage in row columnar; do
      echo "==== ${preset}: test (threaded suites, HIREL_STORAGE=${storage}) ===="
      HIREL_STORAGE="${storage}" ctest --preset "${preset}" -R "${tsan_filter}"
    done
    continue
  fi
  echo "==== ${preset}: build ===="
  cmake --build --preset "${preset}" -j "${jobs}"
  # Run the full suite once per storage layout: HIREL_STORAGE seeds the
  # default TupleStore kind, so this executes every test on both the row
  # and the columnar engine.
  for storage in row columnar; do
    echo "==== ${preset}: test (HIREL_STORAGE=${storage}) ===="
    HIREL_STORAGE="${storage}" ctest --preset "${preset}" -j "${jobs}"
  done
  echo "==== ${preset}: figure reproductions ===="
  for repro in "build/${preset}"/bench/repro_*; do
    [ -x "${repro}" ] || continue
    echo "---- $(basename "${repro}")"
    "${repro}" > /dev/null || {
      echo "FAIL: $(basename "${repro}")" >&2
      exit 1
    }
  done

  echo "==== ${preset}: observability smoke ===="
  repl="build/${preset}/examples/hql_repl"
  trace_json="$(mktemp)"
  snap_file="$(mktemp -u)"
  diag_json="$(mktemp)"
  diag_dir="$(mktemp -d)"
  smoke="$(mktemp)"
  sed -e "s|__TRACE__|${trace_json}|" -e "s|__SNAP__|${snap_file}|" \
      -e "s|__DIAG__|${diag_json}|" -e "s|__DIAGDIR__|${diag_dir}|" \
      tools/obs_smoke.hql > "${smoke}"
  obs_out="$("${repl}" "${smoke}" < /dev/null)"
  rm -f "${smoke}" "${snap_file}"
  echo "${obs_out}" | grep -q '"event":"slow_query"' || {
    echo "FAIL: no slow-query event in SHOW LOG JSON" >&2
    exit 1
  }
  echo "${obs_out}" | grep -q '^# TYPE ' || {
    echo "FAIL: no '# TYPE' lines in SHOW METRICS PROMETHEUS" >&2
    exit 1
  }
  echo "${obs_out}" | grep -q '^# HELP ' || {
    echo "FAIL: no '# HELP' lines in SHOW METRICS PROMETHEUS" >&2
    exit 1
  }
  echo "${obs_out}" | grep -q '"interval_ms"' || {
    echo "FAIL: no telemetry state in SHOW TELEMETRY JSON" >&2
    exit 1
  }
  echo "${obs_out}" | grep -q 'snapshot.save' || {
    echo "FAIL: no snapshot.save wait site in sys.waits" >&2
    exit 1
  }
  # Alert lifecycle: hot_statements trips on the first manual tick, shows
  # up under `severity = ALL warn` (subsumption), degrades the health
  # verdict, and resolves after RESET METRICS + one more tick.
  echo "${obs_out}" | grep -q 'hot_statements.*firing' || {
    echo "FAIL: hot_statements alert did not fire in SHOW ALERTS" >&2
    exit 1
  }
  echo "${obs_out}" | grep -q 'health: degraded' || {
    echo "FAIL: SHOW HEALTH did not report degraded while firing" >&2
    exit 1
  }
  echo "${obs_out}" | grep -q '"alert":"hot_statements","metric":"query.statements","op":">","threshold":3,"for_samples":1,"severity":"warn","builtin":false,"state":"resolved"' || {
    echo "FAIL: hot_statements did not resolve after RESET METRICS" >&2
    exit 1
  }
  echo "${obs_out}" | grep -q 'hirel_wait_site_ns_bucket' || {
    echo "FAIL: no per-site wait histograms in SHOW METRICS PROMETHEUS" >&2
    exit 1
  }
  # Every JSON-producing statement emits a line starting with [ or {; each
  # must parse, as must the exported Chrome trace file. Validation uses the
  # in-tree hirel_check binary so this lane always runs — no host python3
  # required (and no silent skip when it is absent).
  check="build/${preset}/tools/hirel_check"
  json_lines=0
  while IFS= read -r json_line; do
    [ -n "${json_line}" ] || continue
    json_lines=$(( json_lines + 1 ))
    printf '%s\n' "${json_line}" | "${check}" json - > /dev/null || {
      echo "FAIL: invalid JSON output: ${json_line:0:80}..." >&2
      exit 1
    }
  done < <(echo "${obs_out}" | grep '^[[{]' || true)
  if [ "${json_lines}" -eq 0 ]; then
    echo "FAIL: observability smoke produced no JSON lines to validate" >&2
    exit 1
  fi
  "${check}" json "${trace_json}" > /dev/null || {
    echo "FAIL: exported trace is not valid JSON" >&2
    exit 1
  }
  "${check}" json "${diag_json}" > /dev/null || {
    echo "FAIL: exported diagnostics bundle is not valid JSON" >&2
    exit 1
  }
  grep -q '"cause":"statement"' "${diag_json}" || {
    echo "FAIL: diagnostics bundle is missing its cause" >&2
    exit 1
  }
  # The fire transition auto-captured exactly one bundle into the
  # diagnostics dir; it must parse and name the alert as its cause.
  captured=("${diag_dir}"/diag.hot_statements.*.json)
  if [ ${#captured[@]} -ne 1 ] || [ ! -f "${captured[0]}" ]; then
    echo "FAIL: expected exactly one auto-captured bundle, got: ${captured[*]}" >&2
    exit 1
  fi
  "${check}" json "${captured[0]}" > /dev/null || {
    echo "FAIL: auto-captured bundle is not valid JSON" >&2
    exit 1
  }
  grep -q '"cause":"alert:hot_statements"' "${captured[0]}" || {
    echo "FAIL: auto-captured bundle is missing its alert cause" >&2
    exit 1
  }
  echo "observability JSON validated (${json_lines} lines + trace + diagnostics bundles)"
  rm -f "${trace_json}" "${diag_json}"
  rm -rf "${diag_dir}"

  echo "==== ${preset}: workload generator smoke ===="
  gen="build/${preset}/tools/gen_workload"
  workload_a="$(mktemp)"
  workload_b="$(mktemp)"
  # --check executes the generated script in-process; the second run (same
  # seed, no --check) must be byte-identical.
  "${gen}" --tuples 120 --depth 3 --fanout 3 --ops 40 --seed 7 --check \
      > "${workload_a}"
  "${gen}" --tuples 120 --depth 3 --fanout 3 --ops 40 --seed 7 \
      > "${workload_b}"
  cmp -s "${workload_a}" "${workload_b}" || {
    echo "FAIL: gen_workload output is not deterministic for a fixed seed" >&2
    exit 1
  }
  rm -f "${workload_a}" "${workload_b}"
done

echo "CI passed: ${presets[*]}"

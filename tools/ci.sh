#!/usr/bin/env bash
# Local CI: configure, build, and test the release, asan-ubsan, and tsan
# presets. The tsan lane is narrow by design: it builds and runs only the
# threading-sensitive suites (concurrency, plan property, parallel
# determinism) so the sweep stays fast while still exercising every lock,
# latch, and snapshot-publication path under ThreadSanitizer.
#
#   tools/ci.sh            # all three presets
#   tools/ci.sh release    # just one
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(release asan-ubsan tsan)
fi

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

tsan_targets=(hirel_concurrency_test hirel_plan_test
              hirel_parallel_determinism_test)
tsan_filter='ConcurrencyTest|PlanProperty|ParallelDeterminismTest'

for preset in "${presets[@]}"; do
  echo "==== ${preset}: configure ===="
  cmake --preset "${preset}"
  if [ "${preset}" = "tsan" ]; then
    echo "==== ${preset}: build (threaded suites) ===="
    cmake --build --preset "${preset}" -j "${jobs}" \
        --target "${tsan_targets[@]}"
    echo "==== ${preset}: test (threaded suites) ===="
    ctest --preset "${preset}" -R "${tsan_filter}"
    continue
  fi
  echo "==== ${preset}: build ===="
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "==== ${preset}: test ===="
  ctest --preset "${preset}" -j "${jobs}"
  echo "==== ${preset}: figure reproductions ===="
  for repro in "build/${preset}"/bench/repro_*; do
    [ -x "${repro}" ] || continue
    echo "---- $(basename "${repro}")"
    "${repro}" > /dev/null || {
      echo "FAIL: $(basename "${repro}")" >&2
      exit 1
    }
  done
done

echo "CI passed: ${presets[*]}"

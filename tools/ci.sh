#!/usr/bin/env bash
# Local CI: configure, build, and test the release and asan-ubsan presets.
#
#   tools/ci.sh            # both presets
#   tools/ci.sh release    # just one
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(release asan-ubsan)
fi

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

for preset in "${presets[@]}"; do
  echo "==== ${preset}: configure ===="
  cmake --preset "${preset}"
  echo "==== ${preset}: build ===="
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "==== ${preset}: test ===="
  ctest --preset "${preset}" -j "${jobs}"
  echo "==== ${preset}: figure reproductions ===="
  for repro in "build/${preset}"/bench/repro_*; do
    [ -x "${repro}" ] || continue
    echo "---- $(basename "${repro}")"
    "${repro}" > /dev/null || {
      echo "FAIL: $(basename "${repro}")" >&2
      exit 1
    }
  done
done

echo "CI passed: ${presets[*]}"

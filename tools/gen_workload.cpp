// gen_workload: deterministic HQL scenario generator for a product-taxonomy
// database, used by the incremental-maintenance benchmarks and CI smoke.
//
//   gen_workload [--tuples N] [--depth D] [--fanout F] [--ops M]
//                [--seed S] [--check]
//
// Emits, on stdout:
//   1. a product taxonomy: a class tree of the given depth and fanout with
//      N sku instances attached to random leaves,
//   2. a `stock(item: product)` relation with one ASSERT per sku plus a
//      sprinkling of class-level DENYs (the paper's exception pattern), and
//   3. a mixed trace of M operations — subtree queries, new-sku inserts,
//      truth flips, retractions, and CONSOLIDATEs — the
//      single-tuple-mutation-then-query loop the journal patch path is for.
//
// The taxonomy is a tree, so any two facts on the item attribute are
// comparable or cover disjoint descendants: no generated statement can trip
// the ambiguity guard. Output is a pure function of the flags (seeded
// mt19937_64, no iteration over unordered containers), so CI can diff two
// runs to assert reproducibility.
//
// With --check the generated script is also executed against a fresh
// in-process database; exit 1 if any statement fails.

#include <cstdint>
#include <cstring>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "hql/executor.h"

namespace {

struct Config {
  size_t tuples = 1000;
  size_t depth = 3;
  size_t fanout = 4;
  size_t ops = 100;
  uint64_t seed = 1;
  bool check = false;
};

int Usage() {
  std::cerr << "usage: gen_workload [--tuples N] [--depth D] [--fanout F]"
               " [--ops M] [--seed S] [--check]\n";
  return 2;
}

bool ParseSize(const char* text, size_t* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = static_cast<size_t>(v);
  return true;
}

/// Uniform pick in [0, n); callers guarantee n > 0.
size_t Pick(std::mt19937_64& rng, size_t n) {
  return static_cast<size_t>(rng() % n);
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](size_t* out) {
      return i + 1 < argc && ParseSize(argv[++i], out);
    };
    if (std::strcmp(argv[i], "--tuples") == 0) {
      if (!value(&config.tuples)) return Usage();
    } else if (std::strcmp(argv[i], "--depth") == 0) {
      if (!value(&config.depth) || config.depth == 0) return Usage();
    } else if (std::strcmp(argv[i], "--fanout") == 0) {
      if (!value(&config.fanout) || config.fanout == 0) return Usage();
    } else if (std::strcmp(argv[i], "--ops") == 0) {
      if (!value(&config.ops)) return Usage();
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      size_t seed = 0;
      if (!value(&seed)) return Usage();
      config.seed = seed;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      config.check = true;
    } else {
      return Usage();
    }
  }

  std::mt19937_64 rng(config.seed);
  std::ostringstream out;
  out << "-- gen_workload: tuples=" << config.tuples
      << " depth=" << config.depth << " fanout=" << config.fanout
      << " ops=" << config.ops << " seed=" << config.seed << "\n";
  out << "CREATE HIERARCHY product;\n";

  // Class tree, level order: level 1 hangs off the root, each class gets
  // `fanout` children until `depth` levels exist.
  std::vector<std::string> parents = {""};  // "" = the hierarchy root
  std::vector<std::string> leaves;
  size_t next_class = 0;
  for (size_t level = 0; level < config.depth; ++level) {
    std::vector<std::string> created;
    for (const std::string& parent : parents) {
      for (size_t c = 0; c < config.fanout; ++c) {
        std::string name = "cat" + std::to_string(next_class++);
        out << "CREATE CLASS " << name << " IN product";
        if (!parent.empty()) out << " UNDER " << parent;
        out << ";\n";
        created.push_back(std::move(name));
      }
    }
    parents = std::move(created);
  }
  leaves = parents;

  // Skus on random leaves, one ASSERT each; class-level DENYs on a few
  // random mid/leaf classes make consolidation and preemption non-trivial
  // (a denied subtree with asserted exceptions below it).
  out << "CREATE RELATION stock (item: product);\n";
  std::vector<std::string> skus;
  skus.reserve(config.tuples);
  for (size_t i = 0; i < config.tuples; ++i) {
    std::string sku = "sku" + std::to_string(i);
    out << "CREATE INSTANCE " << sku << " IN product UNDER "
        << leaves[Pick(rng, leaves.size())] << ";\n";
    skus.push_back(std::move(sku));
  }
  size_t denials = config.tuples / 50 + 1;
  for (size_t i = 0; i < denials; ++i) {
    out << "DENY stock(ALL cat" << Pick(rng, next_class) << ");\n";
  }
  // Only positive sku facts are tracked as retractable: a positive tuple
  // with no positive predecessor is never redundant, so CONSOLIDATE cannot
  // remove it behind the generator's back (a DENY'd sku under a denied
  // class would be consolidated away, and a later RETRACT would miss).
  std::vector<std::string> live = skus;
  for (const std::string& sku : skus) {
    out << "ASSERT stock(" << sku << ");\n";
  }
  out << "CONSOLIDATE stock;\n";

  // Mixed trace: the mutate-a-little-then-query loop. Weights: 5 query,
  // 2 insert, 1 flip, 1 retract, 1 consolidate.
  size_t next_sku = config.tuples;
  for (size_t i = 0; i < config.ops; ++i) {
    size_t roll = Pick(rng, 10);
    if (roll < 5) {
      out << "SELECT * FROM stock WHERE item = ALL cat"
          << Pick(rng, next_class) << ";\n";
    } else if (roll < 7) {
      std::string sku = "sku" + std::to_string(next_sku++);
      out << "CREATE INSTANCE " << sku << " IN product UNDER "
          << leaves[Pick(rng, leaves.size())] << ";\n";
      out << "ASSERT stock(" << sku << ");\n";
      live.push_back(std::move(sku));
    } else if (roll < 8 && !live.empty()) {
      // Churn: retract and immediately re-assert the same sku. The tuple
      // gets a fresh id, exercising the erase+insert cancellation in the
      // journal patch path.
      const std::string& sku = live[Pick(rng, live.size())];
      out << "RETRACT stock(" << sku << ");\n";
      out << "ASSERT stock(" << sku << ");\n";
    } else if (roll < 9 && !live.empty()) {
      size_t victim = Pick(rng, live.size());
      out << "RETRACT stock(" << live[victim] << ");\n";
      live[victim] = std::move(live.back());
      live.pop_back();
    } else {
      out << "CONSOLIDATE stock;\n";
    }
  }
  out << "COUNT stock;\n";

  std::string script = out.str();
  std::cout << script;

  if (config.check) {
    hirel::hql::Executor exec;
    hirel::Result<std::string> run = exec.Execute(script);
    if (!run.ok()) {
      std::cerr << "gen_workload --check: generated script failed: "
                << run.status() << "\n";
      return 1;
    }
    std::cerr << "gen_workload --check: " << config.tuples << " tuples, "
              << config.ops << " ops executed cleanly\n";
  }
  return 0;
}

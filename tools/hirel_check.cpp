// hirel_check: offline inspection of hirel snapshots and durable
// directories, in the spirit of `ldb`.
//
//   hirel_check snapshot <file>        verify + summarise a snapshot
//   hirel_check durable <dir>          open a WAL directory, report replay
//   hirel_check consistency <file>     run the ambiguity checker on every
//                                      relation of a snapshot
//
// Exit code 0 = healthy, 1 = problems found, 2 = usage/IO errors.

#include <iostream>
#include <string>

#include "core/conflict.h"
#include "io/snapshot.h"
#include "io/text_dump.h"
#include "io/wal.h"

using namespace hirel;

namespace {

int CheckSnapshot(const std::string& path, bool consistency) {
  Result<std::unique_ptr<Database>> loaded = LoadDatabase(path);
  if (!loaded.ok()) {
    std::cerr << "FAILED to load '" << path << "': " << loaded.status()
              << "\n";
    return 1;
  }
  Database& db = **loaded;
  std::cout << "snapshot '" << path << "' is structurally sound\n";
  std::cout << "hierarchies (" << db.HierarchyNames().size() << "):\n";
  for (const std::string& name : db.HierarchyNames()) {
    const Hierarchy* h = db.GetHierarchy(name).value();
    std::cout << "  " << name << ": " << h->num_classes() << " classes, "
              << h->num_instances() << " instances, "
              << h->dag().num_edges() << " edges";
    if (h->dag().HasRedundantEdge()) {
      std::cout << "  [redundant edges retained: on-path mode]";
    }
    std::cout << "\n";
  }
  int problems = 0;
  std::cout << "relations (" << db.RelationNames().size() << "):\n";
  for (const std::string& name : db.RelationNames()) {
    const HierarchicalRelation* relation = db.GetRelation(name).value();
    std::cout << "  " << name << relation->schema().ToString() << ": "
              << relation->size() << " tuples";
    if (consistency) {
      Status ambiguity = CheckAmbiguity(*relation);
      if (ambiguity.ok()) {
        std::cout << "  [consistent]";
      } else {
        std::cout << "\n    AMBIGUITY: " << ambiguity.message();
        ++problems;
      }
    }
    std::cout << "\n";
  }
  if (problems > 0) {
    std::cout << problems << " relation(s) violate the ambiguity "
              << "constraint\n";
    return 1;
  }
  return 0;
}

int CheckDurable(const std::string& dir) {
  Result<std::unique_ptr<LoggedDatabase>> opened = LoggedDatabase::Open(dir);
  if (!opened.ok()) {
    std::cerr << "FAILED to open durable directory '" << dir
              << "': " << opened.status() << "\n";
    return 1;
  }
  LoggedDatabase& ldb = **opened;
  std::cout << "durable directory '" << dir << "' recovered cleanly\n"
            << "  replayed log records: " << ldb.replayed_records() << "\n"
            << "  hierarchies: " << ldb.db().HierarchyNames().size() << "\n"
            << "  relations:   " << ldb.db().RelationNames().size() << "\n";
  return 0;
}

void Usage() {
  std::cerr << "usage:\n"
            << "  hirel_check snapshot <file>\n"
            << "  hirel_check consistency <file>\n"
            << "  hirel_check durable <dir>\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    Usage();
    return 2;
  }
  std::string command = argv[1];
  if (command == "snapshot") {
    return CheckSnapshot(argv[2], /*consistency=*/false);
  }
  if (command == "consistency") {
    return CheckSnapshot(argv[2], /*consistency=*/true);
  }
  if (command == "durable") {
    return CheckDurable(argv[2]);
  }
  Usage();
  return 2;
}

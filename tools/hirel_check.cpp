// hirel_check: offline inspection of hirel snapshots and durable
// directories, in the spirit of `ldb`.
//
//   hirel_check snapshot <file>        verify + summarise a snapshot
//   hirel_check durable <dir>          open a WAL directory, report replay
//   hirel_check consistency <file>     run the ambiguity checker on every
//                                      relation of a snapshot
//   hirel_check json <file|->          validate a JSON document (strict
//                                      RFC 8259 grammar; '-' reads stdin)
//
// Exit code 0 = healthy, 1 = problems found, 2 = usage/IO errors.

#include <cctype>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/conflict.h"
#include "io/snapshot.h"
#include "io/text_dump.h"
#include "io/wal.h"

using namespace hirel;

namespace {

int CheckSnapshot(const std::string& path, bool consistency) {
  Result<std::unique_ptr<Database>> loaded = LoadDatabase(path);
  if (!loaded.ok()) {
    std::cerr << "FAILED to load '" << path << "': " << loaded.status()
              << "\n";
    return 1;
  }
  Database& db = **loaded;
  std::cout << "snapshot '" << path << "' is structurally sound\n";
  std::cout << "hierarchies (" << db.HierarchyNames().size() << "):\n";
  for (const std::string& name : db.HierarchyNames()) {
    const Hierarchy* h = db.GetHierarchy(name).value();
    std::cout << "  " << name << ": " << h->num_classes() << " classes, "
              << h->num_instances() << " instances, "
              << h->dag().num_edges() << " edges";
    if (h->dag().HasRedundantEdge()) {
      std::cout << "  [redundant edges retained: on-path mode]";
    }
    std::cout << "\n";
  }
  int problems = 0;
  std::cout << "relations (" << db.RelationNames().size() << "):\n";
  for (const std::string& name : db.RelationNames()) {
    const HierarchicalRelation* relation = db.GetRelation(name).value();
    std::cout << "  " << name << relation->schema().ToString() << ": "
              << relation->size() << " tuples";
    if (consistency) {
      Status ambiguity = CheckAmbiguity(*relation);
      if (ambiguity.ok()) {
        std::cout << "  [consistent]";
      } else {
        std::cout << "\n    AMBIGUITY: " << ambiguity.message();
        ++problems;
      }
    }
    std::cout << "\n";
  }
  if (problems > 0) {
    std::cout << problems << " relation(s) violate the ambiguity "
              << "constraint\n";
    return 1;
  }
  return 0;
}

int CheckDurable(const std::string& dir) {
  Result<std::unique_ptr<LoggedDatabase>> opened = LoggedDatabase::Open(dir);
  if (!opened.ok()) {
    std::cerr << "FAILED to open durable directory '" << dir
              << "': " << opened.status() << "\n";
    return 1;
  }
  LoggedDatabase& ldb = **opened;
  std::cout << "durable directory '" << dir << "' recovered cleanly\n"
            << "  replayed log records: " << ldb.replayed_records() << "\n"
            << "  hierarchies: " << ldb.db().HierarchyNames().size() << "\n"
            << "  relations:   " << ldb.db().RelationNames().size() << "\n";
  return 0;
}

// A strict RFC 8259 validator, so CI can check the engine's JSON output
// (SHOW ... JSON, EXPORT TRACE) without depending on a host python3. It
// accepts exactly one top-level value and rejects trailing garbage.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  // Returns true on success; on failure fills `error` with a message that
  // includes the byte offset of the first problem.
  bool Validate(std::string& error) {
    SkipSpace();
    if (!ParseValue(error)) return false;
    SkipSpace();
    if (pos_ != text_.size()) {
      error = Fail("trailing characters after top-level value");
      return false;
    }
    return true;
  }

 private:
  std::string Fail(const std::string& what) {
    std::ostringstream out;
    out << what << " at byte " << pos_;
    return out.str();
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipSpace() {
    while (!Eof() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                      Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word, std::string& error) {
    for (const char* c = word; *c != '\0'; ++c, ++pos_) {
      if (Eof() || Peek() != *c) {
        error = Fail(std::string("invalid literal (expected '") + word + "')");
        return false;
      }
    }
    return true;
  }

  bool ParseValue(std::string& error) {
    if (++depth_ > kMaxDepth) {
      error = Fail("nesting deeper than 512 levels");
      return false;
    }
    if (Eof()) {
      error = Fail("unexpected end of input (expected a value)");
      return false;
    }
    bool ok = false;
    switch (Peek()) {
      case '{': ok = ParseObject(error); break;
      case '[': ok = ParseArray(error); break;
      case '"': ok = ParseString(error); break;
      case 't': ok = Literal("true", error); break;
      case 'f': ok = Literal("false", error); break;
      case 'n': ok = Literal("null", error); break;
      default:  ok = ParseNumber(error); break;
    }
    --depth_;
    return ok;
  }

  bool ParseObject(std::string& error) {
    ++pos_;  // '{'
    SkipSpace();
    if (!Eof() && Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (Eof() || Peek() != '"') {
        error = Fail("expected a string key in object");
        return false;
      }
      if (!ParseString(error)) return false;
      SkipSpace();
      if (Eof() || Peek() != ':') {
        error = Fail("expected ':' after object key");
        return false;
      }
      ++pos_;
      SkipSpace();
      if (!ParseValue(error)) return false;
      SkipSpace();
      if (!Eof() && Peek() == ',') { ++pos_; continue; }
      if (!Eof() && Peek() == '}') { ++pos_; return true; }
      error = Fail("expected ',' or '}' in object");
      return false;
    }
  }

  bool ParseArray(std::string& error) {
    ++pos_;  // '['
    SkipSpace();
    if (!Eof() && Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!ParseValue(error)) return false;
      SkipSpace();
      if (!Eof() && Peek() == ',') { ++pos_; continue; }
      if (!Eof() && Peek() == ']') { ++pos_; return true; }
      error = Fail("expected ',' or ']' in array");
      return false;
    }
  }

  bool ParseString(std::string& error) {
    ++pos_;  // opening '"'
    while (!Eof()) {
      unsigned char c = static_cast<unsigned char>(Peek());
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) {
        error = Fail("unescaped control character in string");
        return false;
      }
      if (c == '\\') {
        ++pos_;
        if (Eof()) break;
        char esc = Peek();
        if (esc == '"' || esc == '\\' || esc == '/' || esc == 'b' ||
            esc == 'f' || esc == 'n' || esc == 'r' || esc == 't') {
          ++pos_;
          continue;
        }
        if (esc == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (Eof() || !std::isxdigit(static_cast<unsigned char>(Peek()))) {
              error = Fail("\\u escape needs four hex digits");
              return false;
            }
          }
          continue;
        }
        error = Fail("invalid escape sequence in string");
        return false;
      }
      ++pos_;
    }
    error = Fail("unterminated string");
    return false;
  }

  bool ParseNumber(std::string& error) {
    size_t start = pos_;
    if (!Eof() && Peek() == '-') ++pos_;
    if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      error = Fail("invalid value");
      pos_ = start;
      return false;
    }
    if (Peek() == '0') {
      ++pos_;  // a leading zero cannot be followed by more digits
    } else {
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (!Eof() && Peek() == '.') {
      ++pos_;
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        error = Fail("digit required after decimal point");
        return false;
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (!Eof() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!Eof() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        error = Fail("digit required in exponent");
        return false;
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return true;
  }

  static constexpr int kMaxDepth = 512;
  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

int CheckJson(const std::string& path) {
  std::string text;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "FAILED to open '" << path << "'\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  std::string error;
  JsonValidator validator(text);
  if (!validator.Validate(error)) {
    std::cerr << "invalid JSON in '" << path << "': " << error << "\n";
    return 1;
  }
  std::cout << "'" << path << "' is valid JSON (" << text.size()
            << " bytes)\n";
  return 0;
}

void Usage() {
  std::cerr << "usage:\n"
            << "  hirel_check snapshot <file>\n"
            << "  hirel_check consistency <file>\n"
            << "  hirel_check durable <dir>\n"
            << "  hirel_check json <file|->\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    Usage();
    return 2;
  }
  std::string command = argv[1];
  if (command == "snapshot") {
    return CheckSnapshot(argv[2], /*consistency=*/false);
  }
  if (command == "consistency") {
    return CheckSnapshot(argv[2], /*consistency=*/true);
  }
  if (command == "durable") {
    return CheckDurable(argv[2]);
  }
  if (command == "json") {
    return CheckJson(argv[2]);
  }
  Usage();
  return 2;
}

// Scrape-friendly metrics dump.
//
//   build/tools/metrics_dump [--prometheus | --json | --text] [script.hql ...]
//
// Executes the given HQL scripts against a fresh database (script output is
// discarded), then writes the engine's metrics registry to stdout — by
// default in the Prometheus text exposition format, so the binary can sit
// behind a textfile collector or a cron job without an HTTP endpoint.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "hql/executor.h"
#include "obs/export.h"

using namespace hirel;

namespace {

enum class Format { kPrometheus, kJson, kText };

int Usage() {
  std::cerr << "usage: metrics_dump [--prometheus | --json | --text] "
               "[script.hql ...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Format format = Format::kPrometheus;
  hql::Executor exec;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--prometheus") == 0) {
      format = Format::kPrometheus;
      continue;
    }
    if (std::strcmp(argv[i], "--json") == 0) {
      format = Format::kJson;
      continue;
    }
    if (std::strcmp(argv[i], "--text") == 0) {
      format = Format::kText;
      continue;
    }
    if (argv[i][0] == '-') return Usage();
    std::ifstream in(argv[i]);
    if (!in) {
      std::cerr << "cannot open " << argv[i] << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<std::string> out = exec.Execute(buffer.str());
    if (!out.ok()) {
      std::cerr << argv[i] << ": " << out.status() << "\n";
      return 1;
    }
  }

  // SHOW METRICS syncs the subsumption-cache and thread-pool gauges into
  // the registry; its rendering is discarded in favour of the exporter's.
  Result<std::string> synced = exec.Execute("SHOW METRICS;");
  if (!synced.ok()) {
    std::cerr << "metrics sync failed: " << synced.status() << "\n";
    return 1;
  }

  const obs::MetricsRegistry& metrics = exec.database().metrics();
  switch (format) {
    case Format::kPrometheus:
      std::cout << obs::PrometheusText(metrics,
                                       &obs::WaitEventRegistry::Global());
      break;
    case Format::kJson:
      std::cout << metrics.RenderJson() << "\n";
      break;
    case Format::kText:
      std::cout << metrics.Render();
      break;
  }
  return 0;
}

-- Observability smoke script, driven by tools/ci.sh. The __TRACE__ and
-- __SNAP__ placeholders are substituted with temp paths before execution.
-- Every statement here must keep working: the CI lane validates the JSON
-- outputs (SHOW ... JSON lines and the exported trace file) with the
-- in-tree hirel_check binary and greps for a slow-query event, Prometheus
-- `# TYPE`/`# HELP` lines, telemetry history, and sys.waits rows.
SET LOG debug;
SET SLOW_QUERY_MS 0;
SET TELEMETRY INTERVAL 5;
SET TELEMETRY ON;

CREATE HIERARCHY animal;
CREATE CLASS bird IN animal;
CREATE CLASS canary IN animal UNDER bird;
CREATE CLASS penguin IN animal UNDER bird;
CREATE CLASS galapagos IN animal UNDER penguin;
CREATE CLASS afp IN animal UNDER penguin;
CREATE INSTANCE tweety IN animal UNDER canary;
CREATE INSTANCE paul IN animal UNDER galapagos;
CREATE INSTANCE pamela IN animal UNDER afp;
CREATE INSTANCE patricia IN animal UNDER afp, galapagos;
CREATE INSTANCE peter IN animal UNDER afp;
CREATE RELATION flies (who: animal);
ASSERT flies(ALL bird);
DENY flies(ALL penguin);
ASSERT flies(ALL afp);
ASSERT flies(peter);

SELECT * FROM flies WHERE who = penguin;

-- SAVE records through the snapshot.save wait site, guaranteeing at
-- least one io-class row in sys.waits even on a single-threaded host.
SAVE '__SNAP__';
SELECT * FROM sys.waits;
SELECT * FROM sys.waits WHERE site = ALL io;

SET TELEMETRY OFF;
-- A sys.metrics scan syncs engine gauges and interns every dotted metric
-- name (incl. pool.*) into the sys.metric hierarchy, so the subtree
-- select below always binds even if the sampler never caught pool.*.
SELECT * FROM sys.metrics WHERE name = ALL waits;
SELECT * FROM sys.metrics_history WHERE name = ALL pool;

-- Alerting lifecycle, driven deterministically with SET TELEMETRY TICK
-- (the sampler thread is already off). The watchdog budget is huge so CI
-- hosts never trip it; hot_statements trips immediately, the crit rule
-- never does, and the FOR-2 rule exercises the hysteresis window. The
-- first tick fires hot_statements, which auto-captures a bundle into
-- __DIAGDIR__; RESET METRICS plus one more tick resolves it.
SET WATCHDOG_QUERY_MS 600000;
SET DIAGNOSTICS_DIR '__DIAGDIR__';
CREATE ALERT hot_statements ON query.statements > 3 SEVERITY warn;
CREATE ALERT quiet_crit ON query.errors > 1000000 SEVERITY crit;
CREATE ALERT steady ON query.statements > 3 FOR 2 SAMPLES SEVERITY info;
SET TELEMETRY TICK;
SHOW ALERTS;
SHOW ALERTS JSON;
SELECT * FROM sys.alerts WHERE severity = ALL warn;
SHOW HEALTH;
SHOW HEALTH JSON;
SHOW WAITS;
SHOW WAITS JSON;
EXPORT DIAGNOSTICS '__DIAG__';
RESET METRICS;
SET TELEMETRY TICK;
SHOW ALERTS JSON;
SET DIAGNOSTICS_DIR OFF;
SET WATCHDOG_QUERY_MS OFF;
DROP ALERT hot_statements;
DROP ALERT quiet_crit;
DROP ALERT steady;

-- RESET METRICS above also zeroed the wait-site registry (sites with no
-- waits are omitted from the exposition), so a second SAVE re-seeds an
-- io-class wait before the Prometheus per-site histogram check below.
SAVE '__SNAP__';

EXPORT TRACE '__TRACE__';
SHOW LOG JSON;
SHOW METRICS JSON;
SHOW TRACE JSON;
SHOW TELEMETRY JSON;
SHOW QUERIES JSON;
SHOW METRICS PROMETHEUS;
SET SLOW_QUERY_MS OFF;
SET LOG info;

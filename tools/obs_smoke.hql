-- Observability smoke script, driven by tools/ci.sh. The __TRACE__
-- placeholder is substituted with a temp path before execution. Every
-- statement here must keep working: the CI lane validates the JSON
-- outputs (SHOW ... JSON lines and the exported trace file) with
-- python3 -m json.tool and greps for a slow-query event and Prometheus
-- `# TYPE` lines.
SET LOG debug;
SET SLOW_QUERY_MS 0;

CREATE HIERARCHY animal;
CREATE CLASS bird IN animal;
CREATE CLASS canary IN animal UNDER bird;
CREATE CLASS penguin IN animal UNDER bird;
CREATE CLASS galapagos IN animal UNDER penguin;
CREATE CLASS afp IN animal UNDER penguin;
CREATE INSTANCE tweety IN animal UNDER canary;
CREATE INSTANCE paul IN animal UNDER galapagos;
CREATE INSTANCE pamela IN animal UNDER afp;
CREATE INSTANCE patricia IN animal UNDER afp, galapagos;
CREATE INSTANCE peter IN animal UNDER afp;
CREATE RELATION flies (who: animal);
ASSERT flies(ALL bird);
DENY flies(ALL penguin);
ASSERT flies(ALL afp);
ASSERT flies(peter);

SELECT * FROM flies WHERE who = penguin;

EXPORT TRACE '__TRACE__';
SHOW LOG JSON;
SHOW METRICS JSON;
SHOW TRACE JSON;
SHOW METRICS PROMETHEUS;
SET SLOW_QUERY_MS OFF;
SET LOG info;
